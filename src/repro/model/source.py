"""Sources and static-index allocation (sections 2.2 and 3.2).

An HRTDM source ``s_i`` owns a subset of the message classes and, for the
static tree search STs, a non-empty set of *static indices* — leaves of the
q-leaf static tree, ``q`` a power of the static branching degree ``m``, with
the index sets of distinct sources disjoint.  ``nu_i = len(static_indices)``
bounds how many messages ``s_i`` can transmit in one STs execution, and
enters the feasibility conditions through ``v(M) = 1 + floor(r(M)/nu_i)``.
"""

from __future__ import annotations

import dataclasses

from repro.model.message import MessageClass

__all__ = ["SourceSpec", "allocate_static_indices"]


@dataclasses.dataclass(frozen=True, slots=True)
class SourceSpec:
    """Static description of one source: its classes and static indices."""

    source_id: int
    message_classes: tuple[MessageClass, ...]
    static_indices: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.source_id < 0:
            raise ValueError(f"source_id must be >= 0, got {self.source_id}")
        if not self.static_indices:
            raise ValueError(
                f"source {self.source_id} needs at least one static index"
            )
        ranked = tuple(sorted(self.static_indices))
        if len(set(ranked)) != len(ranked):
            raise ValueError(
                f"source {self.source_id} has duplicate static indices"
            )
        if ranked[0] < 0:
            raise ValueError("static indices must be >= 0")
        # The paper ranks a source's indices by increasing value.
        object.__setattr__(self, "static_indices", ranked)
        names = [c.name for c in self.message_classes]
        if len(set(names)) != len(names):
            raise ValueError(
                f"source {self.source_id} has duplicate message class names"
            )

    @property
    def nu(self) -> int:
        """``nu_i``: number of static indices allocated to this source."""
        return len(self.static_indices)

    @property
    def utilization(self) -> float:
        """Total channel demand of this source's classes (before overhead)."""
        return sum(c.utilization for c in self.message_classes)

    def class_named(self, name: str) -> MessageClass:
        for cls in self.message_classes:
            if cls.name == name:
                return cls
        raise KeyError(f"source {self.source_id} has no class named {name!r}")


def allocate_static_indices(
    class_counts: list[int], q: int, spread: bool = True
) -> list[tuple[int, ...]]:
    """Allocate disjoint static indices to sources.

    ``class_counts[i]`` is ``nu_i``, the number of indices source i should
    receive.  With ``spread=True`` the indices are interleaved round-robin
    across the tree (source i gets ``i, i+z, i+2z, ...``), which separates
    contending sources early in the splitting search; with ``spread=False``
    each source gets a contiguous block, the worst case for early splitting.
    The total must fit in ``q``.
    """
    z = len(class_counts)
    if z == 0:
        raise ValueError("need at least one source")
    if any(nu < 1 for nu in class_counts):
        raise ValueError("every source needs nu >= 1")
    total = sum(class_counts)
    if total > q:
        raise ValueError(f"need {total} indices but the static tree has {q}")
    allocations: list[tuple[int, ...]] = []
    if spread:
        pools: list[list[int]] = [[] for _ in range(z)]
        remaining = class_counts[:]
        index = 0
        cursor = 0
        while any(remaining):
            if remaining[cursor] > 0:
                pools[cursor].append(index)
                remaining[cursor] -= 1
                index += 1
            cursor = (cursor + 1) % z
        allocations = [tuple(pool) for pool in pools]
    else:
        start = 0
        for nu in class_counts:
            allocations.append(tuple(range(start, start + nu)))
            start += nu
    return allocations
