"""EXT-XOR — the ATM non-destructive-bus variant of CSMA/DDCR.

Section 3.2: busses internal to ATM switches have a slot time of a few bit
times, permitting exclusive-OR logic at bus level and hence non-destructive
collisions; "it is reasonably straightforward to derive an analysis of the
CSMA/DDCR protocol in the case of ATM switches".  This experiment *does*
that derivation and validates it against the protocol:

* analysis: the worst-case search cost with child-occupancy feedback,
  ``xi_nd``, satisfies Eq. 1 with ``xi(0) = 0`` (empty subtrees are pruned,
  never probed) — tabulated against the destructive ``xi`` side by side;
* protocol: driving CSMA/DDCR on an idealised XOR bus into ND-worst-case
  placements yields exactly ``xi_nd`` observed slots;
* shape: ``xi_nd <= xi`` everywhere, with equality at full occupancy
  (k = t, where no empty subtree exists to skip) and the largest saving at
  small k (the deep-descent regime: xi_nd(2) = log_m t vs m log_m t - 1).
"""

from __future__ import annotations

from repro.analysis.adversary import build_static_collision_scenario
from repro.core.search_cost import (
    exact_cost_table,
    nondestructive_cost_table,
    worst_case_placement,
)
from repro.core.trees import integer_log
from repro.experiments.base import ExperimentResult
from repro.experiments.catalog import register

__all__ = ["run"]


@register(
    "EXT-XOR",
    title="ATM non-destructive-bus variant of CSMA/DDCR",
    kind="simulation",
)
def run(
    m: int = 4,
    t: int = 64,
    protocol_cases: tuple[tuple[int, int, int], ...] = (
        (2, 16, 2),
        (5, 16, 2),
        (4, 16, 4),
        (8, 16, 2),
    ),
) -> ExperimentResult:
    """Tabulate xi vs xi_nd and validate the XOR protocol path."""
    destructive = exact_cost_table(m, t)
    nondestructive = nondestructive_cost_table(m, t)
    rows: list[list[object]] = []
    for k in range(0, t + 1, max(1, t // 16)):
        rows.append(
            [
                "analysis",
                m,
                t,
                k,
                destructive[k],
                nondestructive[k],
                destructive[k] - nondestructive[k],
            ]
        )
    checks: dict[str, bool] = {
        "xi_nd <= xi for every k": all(
            nondestructive[k] <= destructive[k] for k in range(t + 1)
        ),
        "equal at full occupancy k = t": nondestructive[t] == destructive[t],
        "xi_nd(2) = log_m(t) (deep common path)": (
            nondestructive[2] == integer_log(t, m)
        ),
        "strict saving somewhere": any(
            nondestructive[k] < destructive[k] for k in range(2, t)
        ),
    }
    for k, q, sm in protocol_cases:
        placement = worst_case_placement(k, q, sm, skip_empty=True)
        scenario = build_static_collision_scenario(
            placement, q, sm, nondestructive=True
        )
        result = scenario.run()
        record = result.stations[0].mac.sts_records[0]
        rows.append(
            [
                "protocol",
                sm,
                q,
                k,
                exact_cost_table(sm, q)[k],
                record.wasted_slots,
                scenario.expected_sts_cost,
            ]
        )
        checks[f"protocol k={k} q={q} m={sm} equals xi_nd"] = (
            record.wasted_slots == scenario.expected_sts_cost
            and record.successes == k
        )
    return ExperimentResult(
        experiment_id="EXT-XOR",
        title="Non-destructive (ATM XOR bus) variant: analysis + protocol",
        headers=["kind", "m", "t", "k", "xi", "xi_nd/observed", "saving/expected"],
        rows=rows,
        checks=checks,
    )
