"""SIM-FC — the feasibility conditions hold in simulation.

Takes HRTDM instances that the FCs declare feasible, runs CSMA/DDCR under
the greedy unimodal-arbitrary adversary (every class saturating its (a, w)
bound — the peak-load assumption of section 4.3), and verifies:

* zero deadline misses (<p.HRTDM> timeliness);
* mutual exclusion (successes never overlap — guaranteed by the channel
  model, asserted via slot accounting);
* every class's observed worst latency <= its B_DDCR bound, with the
  tightness ratio reported (how conservative the bound is);
* every recorded tree search within its Problem-P1 bound.
"""

from __future__ import annotations

from repro.analysis.bounds import check_latency_bounds, check_search_costs
from repro.analysis.metrics import summarize
from repro.experiments.base import ExperimentResult
from repro.experiments.catalog import register
from repro.experiments.harness import build_simulation, ddcr_factory, default_ddcr_config
from repro.model.workloads import uniform_problem, videoconference_problem
from repro.net.phy import GIGABIT_ETHERNET, MediumProfile

__all__ = ["run"]

_MS = 1_000_000


def _cases(medium: MediumProfile):
    """(name, problem, horizon) triples the FCs accept on this medium."""
    return (
        (
            "uniform z=4",
            uniform_problem(
                z=4, length=8_000, deadline=12 * _MS, a=1, w=4 * _MS
            ),
            40 * _MS,
        ),
        (
            "uniform z=8 bursty",
            uniform_problem(
                z=8, length=4_000, deadline=20 * _MS, a=2, w=8 * _MS, nu=2
            ),
            60 * _MS,
        ),
        (
            "videoconference x4",
            videoconference_problem(participants=4, scale=0.5),
            40 * _MS,
        ),
    )


@register(
    "SIM-FC",
    title="Feasibility conditions hold in simulation",
    kind="simulation",
)
def run(medium: MediumProfile = GIGABIT_ETHERNET) -> ExperimentResult:
    """Validate the FC guarantee end-to-end on each case."""
    rows: list[list[object]] = []
    checks: dict[str, bool] = {}
    for name, problem, horizon in _cases(medium):
        config = default_ddcr_config(problem, medium)
        trees = config.tree_parameters()
        simulation = build_simulation(
            problem, medium, ddcr_factory(config), check_consistency=True
        )
        result = simulation.run(horizon)
        metrics = summarize(result)
        report, latency_checks = check_latency_bounds(
            result, problem, medium, trees
        )
        violations = check_search_costs(result)
        worst_tightness = max(
            (check.tightness for check in latency_checks), default=0.0
        )
        rows.append(
            [
                name,
                report.feasible,
                metrics.delivered,
                metrics.misses,
                round(metrics.utilization, 4),
                round(worst_tightness, 3),
                len(violations),
            ]
        )
        checks[f"{name}: FCs accept the instance"] = report.feasible
        checks[f"{name}: zero deadline misses"] = metrics.meets_hrtdm
        checks[f"{name}: all latencies within B_DDCR"] = all(
            check.holds for check in latency_checks
        )
        checks[f"{name}: all searches within xi"] = not violations
        checks[f"{name}: messages actually flowed"] = metrics.delivered > 0
    return ExperimentResult(
        experiment_id="SIM-FC",
        title="Feasible instances: DDCR meets every deadline under peak load",
        headers=[
            "case",
            "fc_ok",
            "delivered",
            "misses",
            "utilization",
            "bound_use",
            "xi_violations",
        ],
        rows=rows,
        checks=checks,
    )
