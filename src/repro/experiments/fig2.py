"""FIG2 — Fig. 2 of the paper: 64-leaf binary vs quaternary trees.

The figure overlays the exact worst-case search times ``xi(k, 64)`` for
``m = 2`` and ``m = 4`` and observes that the quaternary curve is less
than or equal to the binary curve for every ``k in [2, 64]`` — better
algorithmic efficiency at equal leaf count.  We reproduce the two series,
the pointwise dominance claim, and the generalisation hook ("optimal m is
derived from the general expression of xi").
"""

from __future__ import annotations

from repro.analysis.report import ascii_plot
from repro.core.optimal_branching import dominates
from repro.core.search_cost import exact_cost_table
from repro.experiments.base import ExperimentResult
from repro.experiments.catalog import register

__all__ = ["run", "T"]

T = 64


@register(
    "FIG2",
    title="Binary vs quaternary tree search times (paper Fig. 2)",
    kind="analytic",
)
def run(t: int = T) -> ExperimentResult:
    """Regenerate Fig. 2's two series and the dominance claim."""
    binary = exact_cost_table(2, t)
    quaternary = exact_cost_table(4, t)
    rows: list[list[object]] = [
        [k, binary[k], quaternary[k], binary[k] - quaternary[k]]
        for k in range(t + 1)
    ]
    checks = {
        "quaternary <= binary for all k in [2, t]": dominates(4, 2, t),
        "strict somewhere (not merely equal)": any(
            quaternary[k] < binary[k] for k in range(2, t + 1)
        ),
        "curves agree at k = t? (both (t-1)/(m-1))": (
            binary[t] == t - 1 and quaternary[t] == (t - 1) // 3
        ),
    }
    ks = list(range(2, t + 1))
    plot = ascii_plot(
        {
            "binary": (ks, [binary[k] for k in ks]),
            "quaternary": (ks, [quaternary[k] for k in ks]),
        }
    )
    result = ExperimentResult(
        experiment_id="FIG2",
        title=(
            f"Worst-case search times, {t}-leaf balanced binary vs "
            "quaternary trees (paper Fig. 2)"
        ),
        headers=["k", "xi_binary", "xi_quaternary", "advantage"],
        rows=rows,
        checks=checks,
    )
    result.notes.append("\n" + plot)
    from repro.analysis.svg import Series, line_chart

    result.svg_figures["fig2"] = line_chart(
        [
            Series(
                name="binary (m=2)",
                xs=ks,
                ys=[binary[k] for k in ks],
                staircase=True,
            ),
            Series(
                name="quaternary (m=4)",
                xs=ks,
                ys=[quaternary[k] for k in ks],
                staircase=True,
            ),
        ],
        title=f"Fig. 2 — {t}-leaf binary vs quaternary worst-case searches",
        x_label="k (active leaves)",
        y_label="search time (slots)",
    )
    return result
