"""EXT-HOST — the host stack pipeline: tasks -> jitter -> bounds -> guarantee.

Section 2.2's modelling argument, as a checked experiment (the narrative
version is ``examples/full_stack.py``):

1. periodic tasks on a preemptive fixed-priority CPU emit messages with
   jitter — the naive periodic declaration (a=1, w=period) is violated by
   the actual emission traces;
2. both the RTA-certified bound (no simulation) and the measured-jitter
   bound admit every trace, with ``empirical <= measured-jitter <=
   RTA-certified`` (each step trades tightness for assurance);
3. an HRTDM instance declared with the certified bounds passes the FCs,
   and replaying the *actual* emission traces through CSMA/DDCR misses
   nothing.
"""

from __future__ import annotations

from repro.analysis.metrics import summarize
from repro.core.feasibility import check_feasibility
from repro.experiments.base import ExperimentResult
from repro.experiments.catalog import register
from repro.experiments.harness import ddcr_factory, default_ddcr_config
from repro.host import (
    TaskSpec,
    analytic_bound,
    analyze,
    certified_bound,
    empirical_bound,
    simulate_host,
)
from repro.model.arrival import TraceArrivals
from repro.model.message import DensityBound, MessageClass
from repro.model.problem import HRTDMProblem
from repro.model.source import SourceSpec, allocate_static_indices
from repro.net.network import NetworkSimulation, Scenario
from repro.net.phy import GIGABIT_ETHERNET, MediumProfile

__all__ = ["run"]

_MS = 1_000_000
_WINDOW = 4 * _MS


def _tasks(host_id: int) -> list[TaskSpec]:
    def cls(kind: str, length: int, deadline: int) -> MessageClass:
        return MessageClass(
            name=f"{kind}-{host_id}",
            length=length,
            deadline=deadline,
            bound=DensityBound(a=4, w=_WINDOW),  # placeholder, re-declared
        )

    return [
        TaskSpec(
            name=f"ctl-{host_id}",
            period=4 * _MS,
            offset=host_id * 131_000,
            bcet=100_000,
            wcet=700_000,
            priority=0,
            message_class=cls("ctl", 1_000, 4 * _MS),
        ),
        TaskSpec(
            name=f"tel-{host_id}",
            period=2 * _MS,
            offset=host_id * 59_000,
            bcet=50_000,
            wcet=300_000,
            priority=1,
            message_class=cls("tel", 4_000, 6 * _MS),
        ),
    ]


@register(
    "EXT-HOST",
    title="Host stack pipeline: tasks, jitter, bounds, guarantee",
    kind="simulation",
)
def run(
    medium: MediumProfile = GIGABIT_ETHERNET,
    hosts: int = 4,
    horizon: int = 40 * _MS,
) -> ExperimentResult:
    """Run the pipeline and check every link in the chain."""
    rows: list[list[object]] = []
    checks: dict[str, bool] = {}
    schedules = {
        host_id: simulate_host(_tasks(host_id), horizon, seed=host_id)
        for host_id in range(hosts)
    }
    naive_violations = 0
    chain_holds = True
    for host_id in range(hosts):
        taskset = _tasks(host_id)
        rta = analyze(taskset)
        for task in taskset:
            trace = schedules[host_id].emission_trace(task.name)
            naive = DensityBound(a=1, w=task.period)
            measured = analytic_bound(
                task, schedules[host_id].jitter(task.name), _WINDOW
            )
            certified = certified_bound(task, taskset, _WINDOW)
            tight = empirical_bound(trace, _WINDOW)
            naive_violations += not naive.admits(trace)
            chain_holds = chain_holds and (
                tight.a <= measured.a <= certified.a
                and measured.admits(trace)
                and certified.admits(trace)
            )
            if host_id == 0:
                rows.append(
                    [
                        task.name,
                        len(trace),
                        rta.per_task[task.name],
                        "no" if not naive.admits(trace) else "yes",
                        tight.a,
                        measured.a,
                        certified.a,
                    ]
                )
    checks["OS stack breaks naive periodic declarations"] = (
        naive_violations > 0
    )
    checks["empirical <= measured-jitter <= RTA-certified"] = chain_holds

    # Build the instance from the *certified* bounds and replay reality.
    allocations = allocate_static_indices([1] * hosts, q=4)
    sources = []
    arrivals = {}
    for host_id in range(hosts):
        taskset = _tasks(host_id)
        classes = []
        for task in taskset:
            certified = certified_bound(task, taskset, _WINDOW)
            base = task.message_class
            classes.append(
                MessageClass(
                    name=base.name,
                    length=base.length,
                    deadline=base.deadline,
                    bound=certified,
                )
            )
            arrivals[base.name] = TraceArrivals(
                trace=tuple(schedules[host_id].emission_trace(task.name))
            )
        sources.append(
            SourceSpec(
                source_id=host_id,
                message_classes=tuple(classes),
                static_indices=allocations[host_id],
            )
        )
    problem = HRTDMProblem(sources=tuple(sources), static_q=4, static_m=2)
    config = default_ddcr_config(problem, medium)
    report = check_feasibility(problem, medium, config.tree_parameters())
    simulation = NetworkSimulation.from_scenario(
        Scenario(
            problem=problem,
            medium=medium,
            protocol_factory=ddcr_factory(config),
            arrivals=arrivals,
            check_consistency=True,
        )
    )
    metrics = summarize(simulation.run(horizon))
    checks["certified instance passes the FCs"] = report.feasible
    checks["replayed real emissions meet every deadline"] = (
        metrics.meets_hrtdm and metrics.delivered > 0
    )
    rows.append(
        [
            "network replay",
            metrics.delivered,
            "-",
            "-",
            "-",
            "-",
            metrics.misses,
        ]
    )
    return ExperimentResult(
        experiment_id="EXT-HOST",
        title="Host pipeline: tasks -> RTA -> (a,w) bounds -> FC -> replay",
        headers=[
            "task (host 0)",
            "emissions",
            "R (RTA)",
            "naive ok",
            "a_empirical",
            "a_measured",
            "a_certified",
        ],
        rows=rows,
        checks=checks,
    )
