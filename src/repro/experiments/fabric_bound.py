"""FABRIC — composed end-to-end bounds across a bridged fabric.

The paper's B_DDCR bound covers one broadcast segment.  Real
deployments chain segments through store-and-forward bridges, and the
end-to-end guarantee composes: a route's worst-case latency is at most
the sum of per-segment bounds plus the fixed bridge forwarding
latencies, valid whenever every hop's segment passes its feasibility
conditions (:mod:`repro.core.composition`).  This experiment runs the
standard bridged DDCR chain (:func:`~repro.experiments.harness.
build_chain_topology`) across chain depths and load scales and holds
the analytic composition against the simulated fabric.

Shape claims:

* at every feasible point the composed bound dominates the worst
  *observed* end-to-end latency over all delivered journeys;
* the fabric's invariant monitors (per-segment standard suite plus the
  bridge conservation monitors) stay clean;
* bridges lose nothing at feasible loads — every journalled frame is
  forwarded, still queued, or pending at the horizon, never dropped;
* journeys actually traverse the whole chain at every feasible point
  (bound domination is vacuous on an idle fabric, so delivery is
  asserted too; points that fail FC — e.g. deep chains at high load —
  are reported in the table but exempt from the delivery claim).
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.catalog import register
from repro.experiments.harness import build_chain_topology
from repro.net.fabric import Fabric
from repro.sweep import Campaign, register_campaign

__all__ = ["run", "DEFAULT_CHAINS", "DEFAULT_SCALES"]

_MS = 1_000_000

DEFAULT_CHAINS: tuple[int, ...] = (2, 3)
DEFAULT_SCALES: tuple[float, ...] = (1.0, 2.0)


@register(
    "FABRIC",
    title="Composed end-to-end bounds across a bridged fabric",
    kind="simulation",
    seed_param="seed",
)
def run(
    chains: tuple[int, ...] = DEFAULT_CHAINS,
    scales: tuple[float, ...] = DEFAULT_SCALES,
    z: int = 4,
    horizon: int = 40 * _MS,
    seed: int = 0,
) -> ExperimentResult:
    """Sweep chain depth x load scale; assert bound domination."""
    rows: list[list[object]] = []
    checks: dict[str, bool] = {}
    bound_ok_at_feasible: list[bool] = []
    clean: list[bool] = []
    lossless: list[bool] = []
    delivered_at_feasible: list[bool] = []
    for depth in chains:
        for scale in scales:
            topology, trees = build_chain_topology(
                segments=depth, z=z, scale=scale,
                root_seed=seed, monitors=True,
            )
            fabric = Fabric(topology)
            (route_bound,) = fabric.route_bounds(trees)
            result = fabric.run(horizon)
            worst = result.worst_latency(route_bound.route)
            delivered = len(result.delivered())
            dropped = sum(report.dropped for report in result.bridges)
            bound_ok = worst is None or worst <= route_bound.bound
            clean.append(result.invariants_ok)
            if route_bound.feasible:
                bound_ok_at_feasible.append(bound_ok)
                lossless.append(dropped == 0)
                delivered_at_feasible.append(delivered > 0)
            rows.append(
                [
                    depth,
                    scale,
                    route_bound.feasible,
                    round(route_bound.bound, 1),
                    worst,
                    delivered,
                    len(result.in_flight()),
                    dropped,
                    bound_ok,
                    result.invariants_ok,
                ]
            )
    checks["composed bound dominates observed latency when feasible"] = all(
        bound_ok_at_feasible
    )
    checks["invariants clean at every point"] = all(clean)
    checks["bridges lose nothing at feasible loads"] = all(lossless)
    checks["journeys traverse the chain at feasible loads"] = all(
        delivered_at_feasible
    )
    return ExperimentResult(
        experiment_id="FABRIC",
        title="Composed end-to-end bounds across a bridged fabric",
        headers=[
            "segments",
            "scale",
            "fc_ok",
            "bound",
            "worst_e2e",
            "delivered",
            "in_flight",
            "dropped",
            "bound_ok",
            "inv_ok",
        ],
        rows=rows,
        checks=checks,
    )


# The canonical campaign over this experiment: one point per
# (chain depth, load scale) cell (``python -m repro.experiments sweep
# fabric-scale``).  Each point is a single fabric run, so the axes are
# singleton tuples feeding the runner's sweep parameters.
register_campaign(
    Campaign.make(
        "fabric-scale",
        experiment="FABRIC",
        axes={
            "chains": ((2,), (3,), (4,)),
            "scales": ((1.0,), (2.0,)),
        },
        batch_size=2,
        description="Fabric bound composition across depth x load",
    )
)
