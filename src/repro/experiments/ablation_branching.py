"""ABL-M — ablation: branching degree of the CSMA/DDCR trees.

Fig. 2 shows the quaternary tree beating the binary at equal leaf count in
worst-case search slots; this ablation asks whether that carries to the
*protocol* level: same workload, same adversarial arrivals, DDCR configured
with time-tree branching m in {2, 4, 8} (leaf count fixed at 64).

Reported per m: delivered, misses, total wasted (collision + idle) slots,
utilization and worst latency.  Shape claim: total search overhead does not
increase when moving from binary to quaternary time trees (the analytic
dominance of Fig. 2), while all degrees deliver the full message set.
"""

from __future__ import annotations

from repro.analysis.metrics import summarize
from repro.experiments.base import ExperimentResult
from repro.experiments.catalog import register
from repro.experiments.harness import build_simulation, ddcr_factory, default_ddcr_config
from repro.model.workloads import uniform_problem
from repro.net.phy import GIGABIT_ETHERNET, MediumProfile

__all__ = ["run", "DEFAULT_DEGREES"]

_MS = 1_000_000

DEFAULT_DEGREES: tuple[int, ...] = (2, 4, 8)


@register(
    "ABL-M",
    title="Ablation: time-tree branching degree",
    kind="simulation",
)
def run(
    degrees: tuple[int, ...] = DEFAULT_DEGREES,
    medium: MediumProfile = GIGABIT_ETHERNET,
    horizon: int = 48 * _MS,
) -> ExperimentResult:
    """Sweep the time-tree branching degree at fixed leaf count 64."""
    problem = uniform_problem(
        z=8, length=8_000, deadline=10 * _MS, a=2, w=8 * _MS, nu=1
    )
    rows: list[list[object]] = []
    checks: dict[str, bool] = {}
    wasted_by_m: dict[int, int] = {}
    for m in degrees:
        config = default_ddcr_config(problem, medium, time_f=64, time_m=m)
        simulation = build_simulation(
            problem, medium, ddcr_factory(config), check_consistency=True
        )
        result = simulation.run(horizon)
        metrics = summarize(result)
        wasted = result.stats.collision_slots + result.stats.silence_slots
        # Productive searches only: empty TTs runs cost one root-probe slot
        # regardless of m and would swamp the branching-degree signal.
        mac = result.stations[0].mac
        search_wasted = sum(
            r.wasted_slots
            for r in mac.tts_records
            if r.successes or r.nested_sts_runs
        ) + sum(r.wasted_slots for r in mac.sts_records)
        wasted_by_m[m] = search_wasted
        rows.append(
            [
                m,
                metrics.delivered,
                metrics.misses,
                search_wasted,
                wasted,
                round(metrics.utilization, 4),
                metrics.max_latency,
            ]
        )
        checks[f"m={m}: no deadline misses"] = metrics.meets_hrtdm
    if 2 in wasted_by_m and 4 in wasted_by_m:
        checks["quaternary search overhead <= binary (Fig. 2 at protocol level)"] = (
            wasted_by_m[4] <= wasted_by_m[2]
        )
    return ExperimentResult(
        experiment_id="ABL-M",
        title="Ablation: time-tree branching degree (64 leaves)",
        headers=[
            "time_m",
            "delivered",
            "misses",
            "search_slots",
            "all_wasted_slots",
            "util",
            "max_latency",
        ],
        rows=rows,
        checks=checks,
    )
