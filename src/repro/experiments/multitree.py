"""EQ16-19 — Problem P2: searches over multiple consecutive trees.

For a grid of (m, t, v, u) the experiment computes:

* the exhaustive optimum of Eq. 16 (max-plus DP over all compositions of u
  into v parts in [2, t]) with a witnessing composition;
* the paper's closed-form bound Eq. 19,
  ``xi_tilde(u, t*v) - (v-1)/(m-1)``;
* the Eq. 18 identity between the even-split form ``v * xi_tilde(u/v, t)``
  and the closed form (checked to float precision).

Shape claims: the bound always dominates the exhaustive optimum (Eq. 17 +
Eq. 18), is exact at ``u = 2 v m^i`` (touch points of every tree's even
split), and the even split is among the worst compositions.
"""

from __future__ import annotations

from repro.core.multi_tree import (
    even_split_identity_gap,
    multi_tree_bound,
    multi_tree_exact_optimum,
)
from repro.experiments.base import ExperimentResult
from repro.experiments.catalog import register

__all__ = ["run", "DEFAULT_CASES"]

#: (m, t, v, u) grid: exhaustive DP is polynomial so sizes can be real.
DEFAULT_CASES: tuple[tuple[int, int, int, int], ...] = (
    (2, 16, 2, 8),
    (2, 16, 3, 12),
    (2, 16, 4, 16),
    (2, 64, 2, 4),
    (2, 64, 3, 24),
    (3, 27, 2, 12),
    (3, 27, 3, 9),
    (4, 64, 2, 4),
    (4, 64, 2, 16),
    (4, 64, 3, 12),
    (4, 64, 4, 8),
    (4, 64, 4, 64),
    (8, 64, 2, 16),
)


@register(
    "EQ16-19",
    title="Searches over multiple consecutive trees (Eq. 16-19)",
    kind="analytic",
)
def run(
    cases: tuple[tuple[int, int, int, int], ...] = DEFAULT_CASES,
) -> ExperimentResult:
    """Compare the P2 bound against the exhaustive optimum on each case."""
    rows: list[list[object]] = []
    checks: dict[str, bool] = {}
    for m, t, v, u in cases:
        optimum = multi_tree_exact_optimum(u, v, t, m)
        bound = multi_tree_bound(float(u), v, t, m)
        identity_gap = even_split_identity_gap(float(u), v, t, m)
        slack = bound - optimum.value
        rows.append(
            [
                m,
                t,
                v,
                u,
                optimum.value,
                round(bound, 3),
                round(slack, 3),
                str(optimum.composition),
            ]
        )
        checks[f"m={m} t={t} v={v} u={u} bound dominates optimum"] = (
            bound >= optimum.value - 1e-9
        )
        checks[f"m={m} t={t} v={v} u={u} eq18 identity"] = (
            identity_gap < 1e-9
        )
        # Exactness at touch points: u/v = 2 m^i and each part even-split.
        per_tree = u // v if u % v == 0 else None
        if per_tree is not None and _is_touch(per_tree, m, t):
            checks[f"m={m} t={t} v={v} u={u} exact at touch point"] = (
                abs(bound - optimum.value) < 1e-9
            )
    return ExperimentResult(
        experiment_id="EQ16-19",
        title="Problem P2: multi-tree bound vs exhaustive optimum",
        headers=["m", "t", "v", "u", "exact_opt", "bound", "slack", "witness"],
        rows=rows,
        checks=checks,
    )


def _is_touch(k: int, m: int, t: int) -> bool:
    """Is k a touch point 2 m^i within [2, 2t/m]?"""
    if k < 2 or k > 2 * t // m:
        return False
    value = k // 2
    if k % 2 != 0:
        return False
    while value % m == 0:
        value //= m
    return value == 1
