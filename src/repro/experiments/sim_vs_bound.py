"""SIM-XI — simulated CSMA/DDCR search costs vs the analytic xi.

Drives the protocol simulator into analytic worst cases built by
:mod:`repro.analysis.adversary` and reports, side by side:

* static tree searches: observed STs slot cost vs ``xi(k, q)`` for
  worst-case placements across k — must be *equal* (the adversary attains
  the bound) — and vs the bound for random placements — must be <=;
* time tree searches: observed TTs slot cost vs the reference search cost
  for the same class placement, and vs ``xi(k, F)``.

This is the experimental face of Problem P1: the protocol's executable
semantics and the recursion analyse the same object.
"""

from __future__ import annotations

import random

from repro.analysis.adversary import (
    build_static_collision_scenario,
    build_time_spread_scenario,
    expected_tts_cost,
)
from repro.core.search_cost import simulate_search, worst_case_placement, xi_exact
from repro.experiments.base import ExperimentResult
from repro.experiments.catalog import register

__all__ = ["run", "STATIC_CASES", "TIME_CASES"]

#: (k, q, m) static tree scenarios.
STATIC_CASES: tuple[tuple[int, int, int], ...] = (
    (2, 16, 2),
    (3, 16, 2),
    (5, 16, 2),
    (8, 16, 2),
    (16, 16, 2),
    (2, 16, 4),
    (4, 16, 4),
    (6, 16, 4),
    (3, 27, 3),
)

#: (k, F, m) time tree scenarios.
TIME_CASES: tuple[tuple[int, int, int], ...] = (
    (2, 64, 4),
    (3, 64, 4),
    (4, 64, 4),
    (2, 16, 2),
    (4, 16, 2),
    (3, 16, 4),
)


@register(
    "SIM-XI",
    title="Simulated DDCR tree-search slot costs vs analytic xi",
    kind="simulation",
    seed_param="seed",
)
def run(
    static_cases: tuple[tuple[int, int, int], ...] = STATIC_CASES,
    time_cases: tuple[tuple[int, int, int], ...] = TIME_CASES,
    random_trials: int = 3,
    seed: int = 2024,
) -> ExperimentResult:
    """Run every adversarial scenario and compare to xi."""
    rng = random.Random(seed)
    rows: list[list[object]] = []
    checks: dict[str, bool] = {}

    for k, q, m in static_cases:
        placement = worst_case_placement(k, q, m)
        observed = _run_static(placement, q, m)
        bound = xi_exact(k, q, m)
        rows.append(["static-worst", m, q, k, observed, bound])
        checks[f"static worst k={k} q={q} m={m} equals xi"] = observed == bound
        for trial in range(random_trials):
            random_placement = tuple(rng.sample(range(q), k))
            observed = _run_static(random_placement, q, m)
            reference = simulate_search(random_placement, q, m).cost
            rows.append(["static-rand", m, q, k, observed, bound])
            checks[
                f"static rand k={k} q={q} m={m} trial={trial} <= xi and "
                "== reference"
            ] = observed == reference and observed <= bound

    for k, f, m in time_cases:
        classes = worst_case_placement(k, f, m)
        observed = _run_time(classes, f, m)
        bound = xi_exact(k, f, m)
        reference = expected_tts_cost(classes, f, m)
        rows.append(["time-worst", m, f, k, observed, bound])
        checks[f"time worst k={k} F={f} m={m} equals xi"] = (
            observed == bound == reference
        )
    return ExperimentResult(
        experiment_id="SIM-XI",
        title="Simulated DDCR tree-search slot costs vs analytic xi",
        headers=["scenario", "m", "t", "k", "observed", "xi"],
        rows=rows,
        checks=checks,
    )


def _run_static(placement: tuple[int, ...], q: int, m: int) -> int:
    scenario = build_static_collision_scenario(placement, static_q=q, static_m=m)
    result = scenario.run()
    records = result.stations[0].mac.sts_records
    if not records:
        raise AssertionError("scenario produced no static tree search")
    return records[0].wasted_slots


def _run_time(classes: tuple[int, ...], f: int, m: int) -> int:
    scenario = build_time_spread_scenario(classes, time_f=f, time_m=m)
    result = scenario.run()
    records = [
        r for r in result.stations[0].mac.tts_records if r.successes > 0
    ]
    if not records:
        raise AssertionError("scenario produced no productive TTs")
    return records[0].wasted_slots
