"""ABL-THETA — ablation: the compressed-time increment theta(c).

Section 3.2: "theta(c) determines a tradeoff between reducing potential
channel idleness and potentially increasing the number of deadline
inversions."  We reproduce both sides on a workload whose deadlines exceed
the scheduling horizon c*F, so messages genuinely need compressed time to
enter a time tree search:

* theta = 0 (compressed time off): after the first collision the protocol
  loops empty TTs forever and the far-deadline messages starve — channel
  idleness is maximal, deliveries collapse;
* growing theta: idleness falls (messages are pulled into the horizon
  sooner), at the price of more deadline inversions (classes compress and
  tie more often);
* the ``exit_to_free_on_idle`` escape hatch restores CSMA-CD behaviour and
  is reported alongside for contrast.
"""

from __future__ import annotations

from repro.analysis.metrics import summarize
from repro.experiments.base import ExperimentResult
from repro.experiments.catalog import register
from repro.experiments.harness import build_simulation, ddcr_factory
from repro.model.workloads import uniform_problem
from repro.net.phy import GIGABIT_ETHERNET, MediumProfile
from repro.protocols.ddcr.config import DDCRConfig

__all__ = ["run", "DEFAULT_THETAS"]

_MS = 1_000_000

DEFAULT_THETAS: tuple[float, ...] = (0.0, 0.5, 1.0, 2.0, 4.0)


@register(
    "ABL-THETA",
    title="Ablation: theta_factor scheduling-horizon guard",
    kind="simulation",
)
def run(
    thetas: tuple[float, ...] = DEFAULT_THETAS,
    medium: MediumProfile = GIGABIT_ETHERNET,
    horizon: int = 64 * _MS,
) -> ExperimentResult:
    """Sweep theta_factor; deadlines sit beyond the scheduling horizon."""
    problem = uniform_problem(
        z=8, length=8_000, deadline=24 * _MS, a=1, w=4 * _MS, nu=1
    )
    # A deliberately short horizon: c*F = 8 ms << 24 ms deadlines, so
    # arrivals always start beyond the time tree and rely on theta.
    def config_for(theta_factor: float, exit_free: bool = False) -> DDCRConfig:
        return DDCRConfig(
            time_f=64,
            time_m=4,
            class_width=125_000,  # c*F = 8 ms
            static_q=problem.static_q,
            static_m=problem.static_m,
            alpha=2 * medium.slot_time,
            theta_factor=theta_factor,
            exit_to_free_on_idle=exit_free,
        )

    rows: list[list[object]] = []
    checks: dict[str, bool] = {}
    delivered_by_theta: dict[float, int] = {}
    idle_by_theta: dict[float, int] = {}
    inversions_by_theta: dict[float, int] = {}
    for theta in thetas:
        simulation = build_simulation(
            problem, medium, ddcr_factory(config_for(theta))
        )
        result = simulation.run(horizon)
        metrics = summarize(result)
        delivered_by_theta[theta] = metrics.delivered
        idle_by_theta[theta] = result.stats.idle_time
        inversions_by_theta[theta] = metrics.inversions
        rows.append(
            [
                f"theta={theta}c",
                metrics.delivered,
                metrics.misses,
                round(result.stats.idle_time / horizon, 4),
                round(metrics.utilization, 4),
                metrics.inversions,
                metrics.max_latency,
            ]
        )
    # Contrast row: the exit-to-free deviation with compressed time off.
    simulation = build_simulation(
        problem, medium, ddcr_factory(config_for(0.0, exit_free=True))
    )
    result = simulation.run(horizon)
    metrics = summarize(result)
    rows.append(
        [
            "theta=0, exit-to-free",
            metrics.delivered,
            metrics.misses,
            round(result.stats.idle_time / horizon, 4),
            round(metrics.utilization, 4),
            metrics.inversions,
            metrics.max_latency,
        ]
    )
    zero = 0.0
    positive = [t for t in thetas if t > 0]
    if zero in delivered_by_theta and positive:
        checks["theta=0 starves far-deadline messages"] = (
            delivered_by_theta[zero]
            < min(delivered_by_theta[t] for t in positive)
        )
        checks["compressed time reduces channel idleness"] = all(
            idle_by_theta[t] < idle_by_theta[zero] for t in positive
        )
    checks["exit-to-free restores deliveries without compressed time"] = (
        metrics.delivered > delivered_by_theta.get(zero, 0)
    )
    return ExperimentResult(
        experiment_id="ABL-THETA",
        title="Ablation: compressed-time increment theta(c)",
        headers=[
            "setting",
            "delivered",
            "misses",
            "idle_frac",
            "util",
            "inversions",
            "max_latency",
        ],
        rows=rows,
        checks=checks,
    )
