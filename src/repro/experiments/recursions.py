"""EQ2-4 / EQ5-8 — the divide-and-conquer recursion and special values.

Cross-validates, over a grid of shapes, that:

* the divide-and-conquer recursion (Eq. 2-4) reproduces the defining
  recursion Eq. 1 (computed by ground-truth DP) for every k;
* the special values Eq. 5 (k=2), Eq. 6 (knee), Eq. 7 (k=t) and the
  derivative Eq. 8 hold exactly.
"""

from __future__ import annotations

from repro.core.divide_conquer import (
    divide_conquer_table,
    xi_even_increment,
    xi_full,
    xi_knee,
    xi_two,
)
from repro.core.search_cost import exact_cost_table
from repro.core.trees import integer_log
from repro.experiments.base import ExperimentResult
from repro.experiments.catalog import register

__all__ = ["run", "DEFAULT_SHAPES"]

DEFAULT_SHAPES: tuple[tuple[int, int], ...] = (
    (2, 4),
    (2, 16),
    (2, 64),
    (2, 256),
    (3, 9),
    (3, 27),
    (3, 81),
    (4, 16),
    (4, 64),
    (4, 256),
    (5, 25),
    (5, 125),
    (8, 64),
)


@register(
    "EQ2-8",
    title="Divide-and-conquer recursion and special values (Eq. 2-8)",
    kind="analytic",
)
def run(
    shapes: tuple[tuple[int, int], ...] = DEFAULT_SHAPES,
) -> ExperimentResult:
    """Validate Eq. 2-8 on every (m, t) shape in the grid."""
    rows: list[list[object]] = []
    checks: dict[str, bool] = {}
    for m, t in shapes:
        dp = exact_cost_table(m, t)
        dc = divide_conquer_table(m, t)
        eq24 = all(dp[k] == dc[k] for k in range(t + 1))
        eq5 = dp[2] == xi_two(t, m)
        eq6 = dp[2 * t // m] == xi_knee(t, m)
        eq7 = dp[t] == xi_full(t, m)
        n = integer_log(t, m)
        if n >= 2:
            eq8 = all(
                dp[2 * p + 2] - dp[2 * p] == xi_even_increment(p, t, m)
                for p in range(1, t // 2)
            )
        else:
            eq8 = True  # Eq. 8 requires n >= 2 by its own statement
        rows.append([m, t, eq24, eq5, eq6, eq7, eq8])
        checks[f"m={m} t={t} all equations"] = all(
            (eq24, eq5, eq6, eq7, eq8)
        )
    return ExperimentResult(
        experiment_id="EQ2-8",
        title="Divide-and-conquer recursion and special values vs Eq. 1 DP",
        headers=["m", "t", "eq2-4", "eq5", "eq6", "eq7", "eq8"],
        rows=rows,
        checks=checks,
    )
