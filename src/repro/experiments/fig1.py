"""FIG1 — Fig. 1 of the paper: worst-case search times for a 64-leaf
balanced quaternary tree.

The figure plots, over ``k in [0, 64]``, the exact worst-case search time
``xi(k, 64)`` (a staircase) together with the concave asymptotic tight
upper bound ``xi_tilde`` (Eq. 11) over ``[2, 2t/m]`` and the exact linear
regime (Eq. 15) beyond the knee.  Shape claims reproduced:

* ``xi_tilde >= xi`` on ``[2, 2t/m]`` with equality at ``k = 2 * 4**i``;
* the curve peaks near the knee ``k = 2t/m = 32`` and then falls with
  slope exactly -1 (Eq. 15);
* end values match Eq. 5 (k=2) and Eq. 7 (k=t).
"""

from __future__ import annotations

from repro.analysis.report import ascii_plot
from repro.core.asymptotic import touch_points, xi_tilde
from repro.core.closed_form import xi_linear_regime
from repro.core.divide_conquer import xi_full, xi_two
from repro.core.search_cost import exact_cost_table
from repro.experiments.base import ExperimentResult
from repro.experiments.catalog import register

__all__ = ["run", "M", "T"]

M = 4
T = 64


@register(
    "FIG1",
    title="Worst-case search times for a balanced tree (paper Fig. 1)",
    kind="analytic",
)
def run(m: int = M, t: int = T) -> ExperimentResult:
    """Regenerate Fig. 1's series for a t-leaf balanced m-ary tree."""
    table = exact_cost_table(m, t)
    knee = 2 * t // m
    rows: list[list[object]] = []
    for k in range(t + 1):
        tilde = xi_tilde(k, t, m) if 2 <= k <= knee else None
        linear = xi_linear_regime(k, t, m) if k >= knee else None
        rows.append(
            [
                k,
                table[k],
                "" if tilde is None else round(tilde, 3),
                "" if linear is None else linear,
            ]
        )
    checks = {
        "xi_tilde dominates xi on [2, 2t/m]": all(
            xi_tilde(k, t, m) >= table[k] - 1e-9 for k in range(2, knee + 1)
        ),
        "equality at touch points k = 2 m^i": all(
            abs(xi_tilde(k, t, m) - table[k]) < 1e-9
            for k in touch_points(t, m)
            if k <= knee
        ),
        "Eq. 15 exact on [2t/m, t]": all(
            xi_linear_regime(k, t, m) == table[k] for k in range(knee, t + 1)
        ),
        "Eq. 5 end value at k=2": table[2] == xi_two(t, m),
        "Eq. 7 end value at k=t": table[t] == xi_full(t, m),
        "unit slope beyond the knee": all(
            table[k] - table[k + 1] == 1 for k in range(knee, t)
        ),
    }
    ks = list(range(2, t + 1))
    plot = ascii_plot(
        {
            "xi": (ks, [table[k] for k in ks]),
            "xi_tilde": (
                list(range(2, knee + 1)),
                [xi_tilde(k, t, m) for k in range(2, knee + 1)],
            ),
        }
    )
    result = ExperimentResult(
        experiment_id="FIG1",
        title=(
            f"Worst-case search times for a {t}-leaf balanced "
            f"{m}-ary tree (paper Fig. 1)"
        ),
        headers=["k", "xi_exact", "xi_tilde", "eq15_linear"],
        rows=rows,
        checks=checks,
    )
    result.notes.append("\n" + plot)
    from repro.analysis.svg import Series, line_chart

    tilde_ks = list(range(2, knee + 1))
    result.svg_figures["fig1"] = line_chart(
        [
            Series(
                name="xi (exact)",
                xs=ks,
                ys=[table[k] for k in ks],
                staircase=True,
            ),
            Series(
                name="xi_tilde (Eq. 11)",
                xs=tilde_ks,
                ys=[xi_tilde(k, t, m) for k in tilde_ks],
            ),
        ],
        title=f"Fig. 1 — worst-case search times, {t}-leaf {m}-ary tree",
        x_label="k (active leaves)",
        y_label="search time (slots)",
    )
    return result
