"""Shared plumbing for the simulation experiments.

Provides sensible default CSMA/DDCR configurations derived from a problem
instance and medium, and protocol factories for every protocol in the
comparison set, so each experiment module stays focused on its question.
"""

from __future__ import annotations

import math

from repro.core.feasibility import TreeParameters
from repro.core.trees import BalancedTree
from repro.model.problem import HRTDMProblem
from repro.model.source import SourceSpec
from repro.model.workloads import relay_chain_problems
from repro.net.network import NetworkSimulation, ProtocolFactory
from repro.net.phy import GIGABIT_ETHERNET, MediumProfile
from repro.net.scenario import Scenario
from repro.net.topology import BridgeSpec, SegmentSpec, Topology
from repro.protocols.base import MACProtocol
from repro.protocols.csma_cd import CSMACDProtocol
from repro.protocols.dcr import DCRProtocol
from repro.protocols.ddcr.config import DDCRConfig
from repro.protocols.ddcr.protocol import DDCRProtocol
from repro.protocols.slotted_aloha import SlottedAlohaProtocol
from repro.protocols.tdma import TDMAProtocol

__all__ = [
    "default_ddcr_config",
    "ddcr_factory",
    "csma_cd_factory",
    "dcr_factory",
    "slotted_aloha_factory",
    "tdma_factory",
    "PROTOCOL_FACTORIES",
    "build_simulation",
    "build_chain_topology",
]

_MS = 1_000_000


def default_ddcr_config(
    problem: HRTDMProblem,
    medium: MediumProfile,
    time_f: int = 64,
    time_m: int = 4,
    theta_factor: float = 1.0,
) -> DDCRConfig:
    """A reasonable CSMA/DDCR configuration for a problem on a medium.

    The class width c is sized so the scheduling horizon ``c * F`` covers
    the largest relative deadline with headroom (deadline classes spread
    over roughly half the time tree), and never drops below one slot time
    (deadlines cannot be distinguished at sub-slot granularity — compare
    the paper's remark that sub-4.096 us deadline accuracy is uncommon on
    Gigabit Ethernet).  Alpha defaults to two slot times of lead.
    """
    max_deadline = max(cls.deadline for cls in problem.all_classes())
    class_width = max(
        medium.slot_time, math.ceil(2 * max_deadline / time_f)
    )
    return DDCRConfig(
        time_f=time_f,
        time_m=time_m,
        class_width=class_width,
        static_q=problem.static_q,
        static_m=problem.static_m,
        alpha=2 * medium.slot_time,
        theta_factor=theta_factor,
    )


def ddcr_factory(config: DDCRConfig) -> ProtocolFactory:
    """All stations share one immutable config, each gets its own automaton."""

    def build(source: SourceSpec) -> MACProtocol:
        return DDCRProtocol(config)

    return build


def csma_cd_factory(seed: int = 0) -> ProtocolFactory:
    """Independent, deterministic backoff stream per station."""

    def build(source: SourceSpec) -> MACProtocol:
        return CSMACDProtocol(seed=seed * 1_000_003 + source.source_id)

    return build


def dcr_factory(problem: HRTDMProblem) -> ProtocolFactory:
    """CSMA/DCR over the problem's static tree."""
    tree = BalancedTree.of(m=problem.static_m, leaves=problem.static_q)

    def build(source: SourceSpec) -> MACProtocol:
        return DCRProtocol(tree)

    return build


def slotted_aloha_factory(
    seed: int = 0, transmit_probability: float = 0.25
) -> ProtocolFactory:
    """Independent, deterministic retry stream per station."""

    def build(source: SourceSpec) -> MACProtocol:
        return SlottedAlohaProtocol(
            transmit_probability=transmit_probability,
            seed=seed * 1_000_003 + source.source_id,
        )

    return build


def tdma_factory(problem: HRTDMProblem) -> ProtocolFactory:
    """Round-robin TDMA over the problem's source roster."""
    roster = tuple(source.source_id for source in problem.sources)

    def build(source: SourceSpec) -> MACProtocol:
        return TDMAProtocol(roster)

    return build


def PROTOCOL_FACTORIES(
    problem: HRTDMProblem, medium: MediumProfile, seed: int = 0
) -> dict[str, ProtocolFactory]:
    """The standard comparison set keyed by protocol name."""
    config = default_ddcr_config(problem, medium)
    return {
        "CSMA/DDCR": ddcr_factory(config),
        "CSMA-CD/BEB": csma_cd_factory(seed),
        "CSMA/DCR": dcr_factory(problem),
        "S-ALOHA": slotted_aloha_factory(seed),
        "TDMA": tdma_factory(problem),
    }


def build_chain_topology(
    segments: int = 3,
    z: int = 4,
    scale: float = 1.0,
    medium: MediumProfile = GIGABIT_ETHERNET,
    forwarding_latency: int = 2_048,
    queue_capacity: int = 64,
    deadline: int = 10 * _MS,
    a: int = 1,
    w: int = 5 * _MS,
    engine: str | None = None,
    trace: bool = False,
    root_seed: int = 0,
    monitors: object = None,
    telemetry: object = None,
) -> tuple[Topology, dict[str, TreeParameters]]:
    """A bridged DDCR chain: the fabric experiments' standard topology.

    ``segments`` homogeneous busses (``z`` local stations each, workload
    from :func:`~repro.model.workloads.relay_chain_problems`) joined in
    a line; bridge k forwards segment k's head class onto the relay
    class owned by station 0 of segment k+1, so ``local-0`` of segment
    0 traverses the whole chain.  Returns the topology plus the
    name-keyed :class:`TreeParameters` that
    :meth:`~repro.net.fabric.Fabric.route_bounds` consumes (each
    segment's DDCR config is derived with :func:`default_ddcr_config`,
    so the analysis matches what actually runs).
    """
    problems = relay_chain_problems(
        segments, z=z, deadline=deadline, a=a, w=w, scale=scale
    )
    specs = []
    trees: dict[str, TreeParameters] = {}
    for k, problem in enumerate(problems):
        config = default_ddcr_config(problem, medium)
        specs.append(
            SegmentSpec(
                name=f"seg{k}",
                problem=problem,
                medium=medium,
                protocol_factory=ddcr_factory(config),
            )
        )
        trees[f"seg{k}"] = config.tree_parameters()
    bridges = tuple(
        BridgeSpec(
            source=f"seg{k}",
            target=f"seg{k + 1}",
            station_id=0,
            class_map={("local-0" if k == 0 else f"relay-{k}"): f"relay-{k + 1}"},
            forwarding_latency=forwarding_latency,
            queue_capacity=queue_capacity,
        )
        for k in range(segments - 1)
    )
    topology = Topology(
        segments=tuple(specs),
        bridges=bridges,
        trace=trace,
        root_seed=root_seed,
        engine=engine,
        monitors=monitors,  # type: ignore[arg-type]
        telemetry=telemetry,  # type: ignore[arg-type]
    )
    return topology, trees


def build_simulation(
    problem: HRTDMProblem,
    medium: MediumProfile,
    factory: ProtocolFactory,
    check_consistency: bool = False,
) -> NetworkSimulation:
    """A simulation under the default peak-load (greedy adversary) arrivals."""
    return NetworkSimulation.from_scenario(
        Scenario(
            problem=problem,
            medium=medium,
            protocol_factory=factory,
            check_consistency=check_consistency,
        )
    )
