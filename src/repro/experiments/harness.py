"""Shared plumbing for the simulation experiments.

Provides sensible default CSMA/DDCR configurations derived from a problem
instance and medium, and protocol factories for every protocol in the
comparison set, so each experiment module stays focused on its question.
"""

from __future__ import annotations

import math

from repro.core.trees import BalancedTree
from repro.model.problem import HRTDMProblem
from repro.model.source import SourceSpec
from repro.net.network import NetworkSimulation, ProtocolFactory
from repro.net.phy import MediumProfile
from repro.protocols.base import MACProtocol
from repro.protocols.csma_cd import CSMACDProtocol
from repro.protocols.dcr import DCRProtocol
from repro.protocols.ddcr.config import DDCRConfig
from repro.protocols.ddcr.protocol import DDCRProtocol
from repro.protocols.tdma import TDMAProtocol

__all__ = [
    "default_ddcr_config",
    "ddcr_factory",
    "csma_cd_factory",
    "dcr_factory",
    "tdma_factory",
    "PROTOCOL_FACTORIES",
    "build_simulation",
]


def default_ddcr_config(
    problem: HRTDMProblem,
    medium: MediumProfile,
    time_f: int = 64,
    time_m: int = 4,
    theta_factor: float = 1.0,
) -> DDCRConfig:
    """A reasonable CSMA/DDCR configuration for a problem on a medium.

    The class width c is sized so the scheduling horizon ``c * F`` covers
    the largest relative deadline with headroom (deadline classes spread
    over roughly half the time tree), and never drops below one slot time
    (deadlines cannot be distinguished at sub-slot granularity — compare
    the paper's remark that sub-4.096 us deadline accuracy is uncommon on
    Gigabit Ethernet).  Alpha defaults to two slot times of lead.
    """
    max_deadline = max(cls.deadline for cls in problem.all_classes())
    class_width = max(
        medium.slot_time, math.ceil(2 * max_deadline / time_f)
    )
    return DDCRConfig(
        time_f=time_f,
        time_m=time_m,
        class_width=class_width,
        static_q=problem.static_q,
        static_m=problem.static_m,
        alpha=2 * medium.slot_time,
        theta_factor=theta_factor,
    )


def ddcr_factory(config: DDCRConfig) -> ProtocolFactory:
    """All stations share one immutable config, each gets its own automaton."""

    def build(source: SourceSpec) -> MACProtocol:
        return DDCRProtocol(config)

    return build


def csma_cd_factory(seed: int = 0) -> ProtocolFactory:
    """Independent, deterministic backoff stream per station."""

    def build(source: SourceSpec) -> MACProtocol:
        return CSMACDProtocol(seed=seed * 1_000_003 + source.source_id)

    return build


def dcr_factory(problem: HRTDMProblem) -> ProtocolFactory:
    """CSMA/DCR over the problem's static tree."""
    tree = BalancedTree.of(m=problem.static_m, leaves=problem.static_q)

    def build(source: SourceSpec) -> MACProtocol:
        return DCRProtocol(tree)

    return build


def tdma_factory(problem: HRTDMProblem) -> ProtocolFactory:
    """Round-robin TDMA over the problem's source roster."""
    roster = tuple(source.source_id for source in problem.sources)

    def build(source: SourceSpec) -> MACProtocol:
        return TDMAProtocol(roster)

    return build


def PROTOCOL_FACTORIES(
    problem: HRTDMProblem, medium: MediumProfile, seed: int = 0
) -> dict[str, ProtocolFactory]:
    """The standard comparison set keyed by protocol name."""
    config = default_ddcr_config(problem, medium)
    return {
        "CSMA/DDCR": ddcr_factory(config),
        "CSMA-CD/BEB": csma_cd_factory(seed),
        "CSMA/DCR": dcr_factory(problem),
        "TDMA": tdma_factory(problem),
    }


def build_simulation(
    problem: HRTDMProblem,
    medium: MediumProfile,
    factory: ProtocolFactory,
    check_consistency: bool = False,
) -> NetworkSimulation:
    """A simulation under the default peak-load (greedy adversary) arrivals."""
    return NetworkSimulation(
        problem,
        medium,
        protocol_factory=factory,
        check_consistency=check_consistency,
    )
