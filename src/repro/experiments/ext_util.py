"""EXT-UTIL — achievable channel utilization under hard guarantees.

Section 3.1's motivation for tree protocols: they "achieve channel
utilization ratios that are very close to theoretical upper bounds".  This
experiment quantifies what CSMA/DDCR's feasibility conditions actually
admit: for each message size and source count, push the arrival density to
the feasibility frontier and report the *guaranteed-load* utilization
(payload bits demanded per bit-time, physical overhead included) at that
frontier.

Shape claims: utilization at the frontier grows with message size (framing
and search overhead amortise) and is not materially hurt by more sources;
large frames achieve well over half the channel under hard guarantees.
"""

from __future__ import annotations

from repro.core.feasibility import max_feasible_scale
from repro.experiments.base import ExperimentResult
from repro.experiments.catalog import register
from repro.experiments.harness import default_ddcr_config
from repro.model.workloads import uniform_problem
from repro.net.phy import GIGABIT_ETHERNET, MediumProfile

__all__ = ["run", "DEFAULT_LENGTHS", "DEFAULT_SOURCE_COUNTS"]

_MS = 1_000_000

DEFAULT_LENGTHS: tuple[int, ...] = (1_000, 4_000, 12_000, 48_000)
DEFAULT_SOURCE_COUNTS: tuple[int, ...] = (4, 16)


@register(
    "EXT-UTIL",
    title="Achievable channel utilization under hard guarantees",
    kind="analytic",
)
def run(
    lengths: tuple[int, ...] = DEFAULT_LENGTHS,
    source_counts: tuple[int, ...] = DEFAULT_SOURCE_COUNTS,
    medium: MediumProfile = GIGABIT_ETHERNET,
    deadline: int = 20 * _MS,
) -> ExperimentResult:
    """Frontier utilization over (message length, source count)."""
    rows: list[list[object]] = []
    checks: dict[str, bool] = {}
    util_by_length: dict[int, list[float]] = {}
    for z in source_counts:
        for length in lengths:

            def factory(scale: float, z=z, length=length):
                return uniform_problem(
                    z=z, length=length, deadline=deadline, a=1, w=4 * _MS,
                    scale=scale,
                )

            config = default_ddcr_config(factory(1.0), medium)
            trees = config.tree_parameters()
            frontier = max_feasible_scale(
                factory, medium, trees, lo=0.01, hi=512.0
            )
            problem = factory(max(frontier, 0.01))
            # Guaranteed load at the frontier, physical overhead included.
            demanded = sum(
                medium.encapsulate(cls.length) * cls.bound.density
                for cls in problem.all_classes()
            )
            rows.append(
                [
                    z,
                    length,
                    round(frontier, 2),
                    round(demanded, 4),
                    round(problem.total_utilization, 4),
                ]
            )
            util_by_length.setdefault(length, []).append(demanded)
            checks[f"z={z} l={length}: frontier exists"] = frontier > 0
    ordered = [min(util_by_length[length]) for length in lengths]
    checks["utilization grows with message size"] = all(
        a <= b + 1e-9 for a, b in zip(ordered, ordered[1:])
    )
    # For a uniform workload the FC's interference window spans
    # d(M) + d(m) = 2d, so guaranteed utilization is analytically capped at
    # 1/2 for this workload family even with zero search overhead; large
    # frames should approach that ceiling.
    checks["large frames approach the 50% uniform-workload ceiling"] = (
        0.4 < max(util_by_length[lengths[-1]]) <= 0.5
    )
    result = ExperimentResult(
        experiment_id="EXT-UTIL",
        title="Guaranteed channel utilization at the feasibility frontier",
        headers=["z", "length", "frontier_scale", "util_phys", "util_payload"],
        rows=rows,
        checks=checks,
    )
    result.notes.append(
        "util_phys counts encapsulated bits (l'); util_payload counts DL-PDU"
        " bits (l)."
    )
    return result
