"""EQ11-14 — tightness of the asymptotic bound xi_tilde.

Measures ``max (xi_tilde - xi)`` over ``[2, 2t/m]`` for a grid of shapes
and verifies the paper's three tightness statements:

* Eq. 12 — the (even-k) maximum gap is attained in the last period
  ``[2t/m^2, 2t/m]``;
* Eq. 13 — the even-k gap is at most ``(m^(1/(m-1))/(e ln m) - 1/(m-1)) t``;
* Eq. 14 — over all m, at most ``(3^(1/4)/(2 e ln 3) - 1/8) t <= 9.54% t``
  (Eq. 13 maximised at m = 9).

Eq. 12-14 bound the closed form of the *even* restriction (Eq. 9), through
which xi_tilde is constructed; odd k sits exactly one below its even
neighbour (Eq. 3), so the all-k gap exceeds the even-k gap by an O(1) term
that vanishes relative to t — both are reported.
"""

from __future__ import annotations

from repro.core.asymptotic import (
    UNIVERSAL_TIGHTNESS_M,
    measure_gap,
    tightness_constant,
    universal_tightness_constant,
)
from repro.experiments.base import ExperimentResult
from repro.experiments.catalog import register

__all__ = ["run", "DEFAULT_SHAPES"]

DEFAULT_SHAPES: tuple[tuple[int, int], ...] = (
    (2, 16),
    (2, 64),
    (2, 256),
    (2, 1024),
    (3, 81),
    (3, 729),
    (4, 64),
    (4, 256),
    (4, 1024),
    (5, 625),
    (8, 512),
    (9, 729),
)


@register(
    "EQ11-14",
    title="Tightness of the asymptotic bound xi_tilde (Eq. 11-14)",
    kind="analytic",
)
def run(
    shapes: tuple[tuple[int, int], ...] = DEFAULT_SHAPES,
) -> ExperimentResult:
    """Measure gaps and check Eq. 12-14 on every shape."""
    rows: list[list[object]] = []
    checks: dict[str, bool] = {}
    for m, t in shapes:
        report = measure_gap(m, t)
        rows.append(
            [
                m,
                t,
                round(report.even_max_gap, 3),
                report.even_argmax_k,
                round(report.even_relative_gap * 100, 3),
                round(report.bound_eq13, 3),
                round(report.max_gap, 3),
            ]
        )
        checks[f"m={m} t={t} eq12 argmax in last period"] = (
            report.argmax_in_last_period()
        )
        checks[f"m={m} t={t} eq13 even gap bound"] = (
            report.even_max_gap <= report.bound_eq13 + 1e-9
        )
        checks[f"m={m} t={t} gap nonnegative (upper bound)"] = (
            report.even_max_gap >= -1e-9
        )
    universal = universal_tightness_constant()
    checks["eq14 universal constant <= 9.54%"] = universal <= 0.0954
    checks["eq14 constant equals eq13 at m=9"] = (
        abs(universal - tightness_constant(UNIVERSAL_TIGHTNESS_M)) < 1e-12
    )
    checks["m=9 maximises eq13 over integer m in [2, 64]"] = all(
        tightness_constant(m) <= tightness_constant(UNIVERSAL_TIGHTNESS_M)
        for m in range(2, 65)
    )
    result = ExperimentResult(
        experiment_id="EQ11-14",
        title="Tightness of the asymptotic bound xi_tilde (Eq. 12-14)",
        headers=[
            "m",
            "t",
            "even_gap",
            "argmax_k",
            "even_gap_%t",
            "eq13_bound",
            "allk_gap",
        ],
        rows=rows,
        checks=checks,
    )
    result.notes.append(
        f"universal constant (Eq. 14) = {universal:.6f} "
        f"({universal * 100:.2f}% of t)"
    )
    return result
