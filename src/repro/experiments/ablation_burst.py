"""ABL-BURST — ablation: half-duplex GigE packet bursting (section 5).

Section 5 argues CSMA/DDCR composes with 802.3z packet bursting: after a
success a station may keep the channel and transmit further EDF-ranked
messages up to a burst budget.  Sweep the budget on a workload where each
source queues several messages per window, and measure both sides of the
deal:

* fewer contentions per delivered message (bursts amortise the tree
  searches) -> lower worst-case latency and higher goodput at equal load;
* a longer non-preemptable channel hold -> other sources' urgent messages
  can be overtaken (deadline inversions may rise).
"""

from __future__ import annotations

from repro.analysis.metrics import summarize
from repro.experiments.base import ExperimentResult
from repro.experiments.catalog import register
from repro.experiments.harness import build_simulation, ddcr_factory
from repro.model.workloads import uniform_problem
from repro.net.phy import GIGABIT_ETHERNET, MediumProfile
from repro.protocols.ddcr.config import DDCRConfig

__all__ = ["run", "DEFAULT_BURST_LIMITS"]

_MS = 1_000_000

#: Burst budgets in DL-PDU bits (0 = bursting off; 65536 = 8 KiB, 802.3z).
DEFAULT_BURST_LIMITS: tuple[int, ...] = (0, 16_384, 65_536)


@register(
    "ABL-BURST",
    title="Ablation: burst budget on a bursty workload",
    kind="simulation",
)
def run(
    burst_limits: tuple[int, ...] = DEFAULT_BURST_LIMITS,
    medium: MediumProfile = GIGABIT_ETHERNET,
    horizon: int = 24 * _MS,
) -> ExperimentResult:
    """Sweep the burst budget on a multi-message-per-window workload."""
    problem = uniform_problem(
        z=8, length=4_000, deadline=6 * _MS, a=4, w=4 * _MS, nu=1
    )

    def config_for(burst_limit: int) -> DDCRConfig:
        return DDCRConfig(
            time_f=64,
            time_m=4,
            class_width=max(medium.slot_time, 2 * 6 * _MS // 64),
            static_q=problem.static_q,
            static_m=problem.static_m,
            alpha=2 * medium.slot_time,
            theta_factor=1.0,
            burst_limit=burst_limit,
        )

    rows: list[list[object]] = []
    checks: dict[str, bool] = {}
    contention_by_limit: dict[int, int] = {}
    latency_by_limit: dict[int, int] = {}
    for burst_limit in burst_limits:
        result = build_simulation(
            problem,
            medium,
            ddcr_factory(config_for(burst_limit)),
            check_consistency=True,
        ).run(horizon)
        metrics = summarize(result)
        # Collisions are the contention signal; silence slots are dominated
        # by the protocol's perpetual empty-TTs loop, which is horizon-
        # bound and identical across burst settings.
        contention = result.stats.collision_slots
        contention_by_limit[burst_limit] = contention
        latency_by_limit[burst_limit] = metrics.max_latency
        rows.append(
            [
                burst_limit,
                metrics.delivered,
                metrics.misses,
                result.stats.collision_slots,
                round(metrics.utilization, 4),
                metrics.max_latency,
                metrics.inversions,
            ]
        )
        checks[f"burst={burst_limit}: no deadline misses"] = (
            metrics.meets_hrtdm
        )
    off = burst_limits[0]
    biggest = burst_limits[-1]
    checks["bursting reduces collision slots"] = (
        contention_by_limit[biggest] < contention_by_limit[off]
    )
    checks["bursting improves worst latency"] = (
        latency_by_limit[biggest] < latency_by_limit[off]
    )
    return ExperimentResult(
        experiment_id="ABL-BURST",
        title="Ablation: 802.3z packet bursting on top of CSMA/DDCR",
        headers=[
            "burst_bits",
            "delivered",
            "misses",
            "collision_slots",
            "util",
            "max_latency",
            "inversions",
        ],
        rows=rows,
        checks=checks,
    )
