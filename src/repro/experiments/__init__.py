"""Experiment harness: one module per paper artefact (see DESIGN.md)."""

from repro.experiments.base import ExperimentResult

__all__ = ["ExperimentResult"]
