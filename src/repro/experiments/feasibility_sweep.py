"""FC — the feasibility frontier of B_DDCR over load and deadline.

Two sweeps over the uniform workload on Gigabit Ethernet:

* load sweep: for several deadlines, the largest arrival-density scale the
  FCs accept (binary search on an incremental
  :class:`repro.core.feas_engine.FeasibilityEngine`, value-identical to
  scalar :func:`repro.core.feasibility.max_feasible_scale`) — the
  feasibility frontier an operator dimensioning a network would read off;
* anatomy: for one instance, the per-class decomposition of B_DDCR
  (transmission time vs S1 static-search vs S2 time-search slots),
  showing where the budget goes.

Shape claims: the frontier is monotone in the deadline (longer deadlines
admit denser traffic); the bound decomposition is dominated by
transmission time at long deadlines and by search overhead at short ones.
"""

from __future__ import annotations

from repro.core.feas_engine import FeasibilityEngine
from repro.core.feas_grid import BatchEvaluator
from repro.experiments.base import ExperimentResult
from repro.experiments.catalog import register
from repro.experiments.harness import default_ddcr_config
from repro.model.workloads import uniform_problem
from repro.net.phy import GIGABIT_ETHERNET, MediumProfile
from repro.sweep import Campaign, register_campaign

__all__ = ["run", "DEFAULT_DEADLINES_MS"]

_MS = 1_000_000

DEFAULT_DEADLINES_MS: tuple[int, ...] = (2, 4, 8, 16, 32)


@register(
    "FC",
    title="Feasibility frontier of B_DDCR over load and deadline",
    kind="analytic",
)
def run(
    deadlines_ms: tuple[int, ...] = DEFAULT_DEADLINES_MS,
    medium: MediumProfile = GIGABIT_ETHERNET,
    z: int = 8,
) -> ExperimentResult:
    """Compute the feasibility frontier and one bound decomposition."""
    rows: list[list[object]] = []
    checks: dict[str, bool] = {}
    frontier: list[float] = []
    evaluator: BatchEvaluator | None = None
    for deadline_ms in deadlines_ms:
        deadline = deadline_ms * _MS

        def factory(scale: float, deadline=deadline):
            return uniform_problem(
                z=z, length=8_000, deadline=deadline, a=1, w=4 * _MS,
                scale=scale,
            )

        config = default_ddcr_config(factory(1.0), medium)
        trees = config.tree_parameters()
        # One shared evaluator across the whole frontier (the tree shapes
        # don't vary with the deadline) keeps the S1 search-cost memo and
        # encapsulation map warm across every bisection probe.
        if evaluator is None or evaluator.trees != trees:
            evaluator = BatchEvaluator(medium, trees)
        # The uniform workload scales densities exactly like the engine's
        # rescale_density, so the bisection runs on delta state instead of
        # rebuilding a problem and a scalar report per probe.
        engine = FeasibilityEngine.from_problem(
            factory(1.0), medium, trees, evaluator=evaluator
        )
        best = engine.max_feasible_density(lo=0.01, hi=64.0)
        frontier.append(best)
        report = engine.report()  # engine sits at max(best, lo) after search
        worst = report.worst
        rows.append(
            [
                deadline_ms,
                round(best, 3),
                round(worst.bound / _MS, 3),
                worst.interference,
                worst.static_trees,
                round(worst.search_slots_static, 1),
                worst.search_slots_time,
            ]
        )
    # Tolerance: the frontier is found by binary search to ~1e-3 relative
    # precision and the ceil terms of u(M) make it slightly jagged.
    checks["frontier monotone in deadline (1% tolerance)"] = all(
        a <= b * 1.01 + 1e-9 for a, b in zip(frontier, frontier[1:])
    )
    checks["short deadlines admit less load"] = frontier[0] < frontier[-1]
    checks["every frontier point is feasible"] = all(f > 0 for f in frontier)
    result = ExperimentResult(
        experiment_id="FC",
        title="Feasibility frontier of B_DDCR (uniform workload, GigE)",
        headers=[
            "deadline_ms",
            "max_scale",
            "bound_ms",
            "u(M)",
            "v(M)",
            "S1_slots",
            "S2_slots",
        ],
        rows=rows,
        checks=checks,
    )
    result.notes.append(
        "max_scale multiplies every class's arrival density a/w; the "
        "frontier is where B_DDCR(s, M) = d(M) for the binding class."
    )
    return result


# The canonical campaign over this experiment: the frontier re-derived
# for several class counts z (``python -m repro.experiments sweep
# fc-frontier``).  The axis is z — each point keeps the full deadline
# sweep, so the cross-deadline monotonicity checks stay meaningful.
register_campaign(
    Campaign.make(
        "fc-frontier",
        experiment="FC",
        axes={"z": (4, 8, 16)},
        batch_size=2,
        description="FC feasibility frontier across class counts z",
    )
)
