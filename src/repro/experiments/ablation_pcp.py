"""ABL-PCP — ablation: deadlines through the 802.1p priority field.

Section 5 proposes passing message deadlines to the CSMA/DDCR layer "via
the standard conformant priority field" (IEEE 802.1Q/802.1p).  The field
is 3 bits, so the MAC sees the deadline quantised onto an 8-class
logarithmic grid.  This experiment runs the same heterogeneous workload
with exact deadlines and with the quantised view, and measures the cost
of standards conformance:

* the hard guarantee must survive — quantisation only *merges* deadline
  classes, never inverts them, and the representative is the band's upper
  edge, so a feasible instance stays on time;
* the loss of resolution shows up (if anywhere) as extra time-leaf ties
  resolved by static searches and as deadline inversions between
  messages whose exact deadlines differ inside one priority band.
"""

from __future__ import annotations

from repro.analysis.metrics import summarize
from repro.experiments.base import ExperimentResult
from repro.experiments.catalog import register
from repro.experiments.harness import build_simulation, ddcr_factory
from repro.model.workloads import videoconference_problem
from repro.net.dot1q import DEFAULT_PRIORITY_MAP
from repro.net.phy import GIGABIT_ETHERNET, MediumProfile
from repro.protocols.ddcr.config import DDCRConfig

__all__ = ["run"]

_MS = 1_000_000


@register(
    "ABL-PCP",
    title="Ablation: deadlines quantised through 802.1p priorities",
    kind="simulation",
)
def run(
    medium: MediumProfile = GIGABIT_ETHERNET,
    horizon: int = 24 * _MS,
) -> ExperimentResult:
    """Exact vs 802.1p-quantised deadlines on the videoconference mix."""
    problem = videoconference_problem(participants=6)
    max_deadline = max(cls.deadline for cls in problem.all_classes())

    def config_for(use_map: bool) -> DDCRConfig:
        return DDCRConfig(
            time_f=64,
            time_m=4,
            class_width=max(medium.slot_time, 2 * max_deadline // 64),
            static_q=problem.static_q,
            static_m=problem.static_m,
            alpha=2 * medium.slot_time,
            theta_factor=1.0,
            priority_map=DEFAULT_PRIORITY_MAP if use_map else None,
        )

    rows: list[list[object]] = []
    checks: dict[str, bool] = {}
    results = {}
    for label, use_map in (("exact deadlines", False), ("802.1p field", True)):
        result = build_simulation(
            problem,
            medium,
            ddcr_factory(config_for(use_map)),
            check_consistency=True,
        ).run(horizon)
        metrics = summarize(result)
        sts_runs = len(result.stations[0].mac.sts_records)
        results[label] = (metrics, sts_runs)
        rows.append(
            [
                label,
                metrics.delivered,
                metrics.misses,
                metrics.inversions,
                sts_runs,
                metrics.max_latency,
                round(metrics.utilization, 4),
            ]
        )
    exact_metrics, exact_sts = results["exact deadlines"]
    pcp_metrics, pcp_sts = results["802.1p field"]
    checks["hard guarantee survives quantisation"] = pcp_metrics.misses == 0
    checks["exact baseline misses nothing"] = exact_metrics.misses == 0
    checks["identical goodput"] = (
        pcp_metrics.delivered == exact_metrics.delivered
    )
    checks["quantisation never loses messages"] = (
        pcp_metrics.delivered == exact_metrics.delivered
    )
    del exact_sts, pcp_sts  # reported in the table; run-level tie counts
    # depend on timing dynamics, so only the static merge is asserted:
    pcp_by_class = DEFAULT_PRIORITY_MAP.classes_used(problem.all_classes())
    checks["the 3-bit field merges distinct deadline classes"] = any(
        len(names) > 1 for names in pcp_by_class.values()
    )
    checks["quantisation never inverts deadline order"] = (
        DEFAULT_PRIORITY_MAP.preserves_order(
            [cls.deadline for cls in problem.all_classes()]
        )
    )
    result = ExperimentResult(
        experiment_id="ABL-PCP",
        title="Ablation: deadlines via the 3-bit 802.1p priority field",
        headers=[
            "mac view",
            "delivered",
            "misses",
            "inversions",
            "sts_runs",
            "max_latency",
            "util",
        ],
        rows=rows,
        checks=checks,
    )
    merged = {
        pcp: names for pcp, names in pcp_by_class.items() if len(names) > 1
    }
    result.notes.append(
        f"priority classes used: "
        f"{sorted(pcp_by_class)} — bands merging several message classes: "
        f"{ {p: len(n) for p, n in merged.items()} }"
    )
    return result
