"""EXT-NOISE — failure injection: common-mode slot corruption.

Section 3.1 motivates broadcast busses partly by the "interesting
fault-tolerant properties" of the protocols that share them.  This
experiment injects common-mode noise (a slot is garbled into a collision
seen identically by every station, destroying any frame on the wire) at
increasing rates and measures each protocol's degradation.

Shape claims:

* the deterministic protocols (DDCR, DCR, TDMA) stay *consistent* — the
  lockstep invariant holds at every noise rate (asserted slot by slot) —
  and keep delivering, with latency degrading gracefully;
* DDCR still misses nothing at moderate noise on a feasible instance
  (the FC slack absorbs retransmissions);
* noise costs BEB the most: its backoff doubles on every corrupted
  attempt, so its worst latency grows fastest.
"""

from __future__ import annotations

from repro.analysis.metrics import summarize
from repro.experiments.base import ExperimentResult
from repro.experiments.catalog import register
from repro.experiments.harness import PROTOCOL_FACTORIES
from repro.model.workloads import uniform_problem
from repro.net.network import NetworkSimulation, Scenario
from repro.net.phy import GIGABIT_ETHERNET, MediumProfile

__all__ = ["run", "DEFAULT_NOISE_RATES"]

_MS = 1_000_000

DEFAULT_NOISE_RATES: tuple[float, ...] = (0.0, 0.01, 0.05, 0.15)


@register(
    "EXT-NOISE",
    title="Failure injection: common-mode slot corruption sweep",
    kind="simulation",
    seed_param="seed",
)
def run(
    noise_rates: tuple[float, ...] = DEFAULT_NOISE_RATES,
    medium: MediumProfile = GIGABIT_ETHERNET,
    horizon: int = 24 * _MS,
    seed: int = 5,
) -> ExperimentResult:
    """Noise sweep across the protocol comparison set."""
    problem = uniform_problem(
        z=8, length=8_000, deadline=12 * _MS, a=1, w=4 * _MS
    )
    rows: list[list[object]] = []
    checks: dict[str, bool] = {}
    ddcr_misses: dict[float, int] = {}
    for rate in noise_rates:
        for name, factory in PROTOCOL_FACTORIES(problem, medium, seed).items():
            simulation = NetworkSimulation.from_scenario(
                Scenario(
                    problem=problem,
                    medium=medium,
                    protocol_factory=factory,
                    check_consistency=name != "CSMA-CD/BEB",
                    noise_rate=rate,
                    noise_seed=seed,
                )
            )
            result = simulation.run(horizon)
            metrics = summarize(result)
            if name == "CSMA/DDCR":
                ddcr_misses[rate] = metrics.misses
            rows.append(
                [
                    name,
                    rate,
                    result.stats.corrupted_slots,
                    metrics.delivered,
                    metrics.misses,
                    metrics.max_latency,
                    round(metrics.utilization, 4),
                ]
            )
    checks["DDCR misses nothing up to 5% noise"] = all(
        ddcr_misses[rate] == 0 for rate in noise_rates if rate <= 0.05
    )
    checks["lockstep held at every noise rate"] = True  # asserted per slot
    checks["noise actually injected"] = any(
        row[2] > 0 for row in rows if row[1] > 0
    )
    return ExperimentResult(
        experiment_id="EXT-NOISE",
        title="Failure injection: common-mode slot corruption sweep",
        headers=[
            "protocol",
            "noise",
            "corrupted",
            "delivered",
            "misses",
            "max_latency",
            "util",
        ],
        rows=rows,
        checks=checks,
    )
