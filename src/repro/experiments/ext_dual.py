"""EXT-DUAL — dual-bus fault tolerance (sections 3.2 and 5).

The paper notes parallel media and the industrial *dual bus* CSMA/DCR
deployments.  This experiment kills bus A mid-run and compares:

* single bus, failure: everything after the failure is lost (misses pile
  up) — the baseline that motivates redundancy;
* dual bus, same failure: stations detect the jam (K consecutive
  collision slots, common knowledge — no coordination messages), fail
  over in the same slot, and deliver everything; the only cost is the
  failover window, which must stay within the FC slack for the
  guarantee to hold end to end;
* dual bus, no failure: identical behaviour to a single healthy bus
  (the standby is warm but silent).
"""

from __future__ import annotations

from repro.analysis.metrics import summarize
from repro.experiments.base import ExperimentResult
from repro.experiments.catalog import register
from repro.experiments.harness import ddcr_factory, default_ddcr_config
from repro.model.workloads import uniform_problem
from repro.net.dualbus import DualBusSimulation, suggested_jam_threshold
from repro.net.network import NetworkSimulation, RunResult, Scenario
from repro.net.phy import GIGABIT_ETHERNET, MediumProfile
from repro.sim.trace import TraceLog

__all__ = ["run"]

_MS = 1_000_000


@register(
    "EXT-DUAL",
    title="Dual-bus fault tolerance under a bus failure",
    kind="simulation",
)
def run(
    medium: MediumProfile = GIGABIT_ETHERNET,
    horizon: int = 24 * _MS,
    fail_at: int = 9 * _MS,
) -> ExperimentResult:
    """Compare single-bus and dual-bus behaviour under a bus failure."""
    problem = uniform_problem(
        z=8, length=8_000, deadline=10 * _MS, a=1, w=4 * _MS
    )
    config = default_ddcr_config(problem, medium)
    threshold = suggested_jam_threshold(config)
    rows: list[list[object]] = []
    checks: dict[str, bool] = {}

    # Single healthy bus (reference).
    reference = NetworkSimulation.from_scenario(
        Scenario(
            problem=problem,
            medium=medium,
            protocol_factory=ddcr_factory(config),
        )
    ).run(horizon)
    reference_metrics = summarize(reference)
    rows.append(
        [
            "single, healthy",
            reference_metrics.delivered,
            reference_metrics.misses,
            0,
            reference_metrics.max_latency,
        ]
    )

    # Single bus that fails: everything after fail_at is lost.  Emulated
    # as a dual-bus run whose failover threshold is unreachable, so the
    # stations stay on the jammed bus forever.
    single_failed = DualBusSimulation(
        problem,
        medium,
        protocol_factory=ddcr_factory(config),
        jam_threshold=10**9,
        fail_bus_at=fail_at,
    ).run(horizon)
    sf_metrics = summarize(
        RunResult(
            horizon=horizon,
            stations=single_failed.stations,
            stats=single_failed.bus_stats[0],
            trace=TraceLog(enabled=False),
        )
    )
    rows.append(
        [
            "single, fails mid-run",
            sf_metrics.delivered,
            sf_metrics.misses,
            0,
            sf_metrics.max_latency,
        ]
    )

    # Dual bus with the same failure.
    dual = DualBusSimulation(
        problem,
        medium,
        protocol_factory=ddcr_factory(config),
        jam_threshold=threshold,
        fail_bus_at=fail_at,
        check_consistency=True,
    ).run(horizon)
    dual_metrics = summarize(
        RunResult(
            horizon=horizon,
            stations=dual.stations,
            stats=dual.bus_stats[1],
            trace=TraceLog(enabled=False),
        )
    )
    rows.append(
        [
            "dual, bus A fails",
            dual_metrics.delivered,
            dual_metrics.misses,
            dual.failovers,
            dual_metrics.max_latency,
        ]
    )

    # Dual bus, no failure: must behave like the healthy single bus.
    dual_clean = DualBusSimulation(
        problem,
        medium,
        protocol_factory=ddcr_factory(config),
        jam_threshold=threshold,
        check_consistency=True,
    ).run(horizon)
    dc_metrics = summarize(
        RunResult(
            horizon=horizon,
            stations=dual_clean.stations,
            stats=dual_clean.bus_stats[0],
            trace=TraceLog(enabled=False),
        )
    )
    rows.append(
        [
            "dual, healthy",
            dc_metrics.delivered,
            dc_metrics.misses,
            dual_clean.failovers,
            dc_metrics.max_latency,
        ]
    )

    checks["single healthy bus misses nothing"] = (
        reference_metrics.misses == 0
    )
    checks["single failed bus loses traffic"] = (
        sf_metrics.delivered < reference_metrics.delivered
        and sf_metrics.misses > 0
    )
    checks["dual bus fails over exactly once"] = dual.failovers == 1
    checks["dual bus delivers everything despite the failure"] = (
        dual_metrics.delivered == reference_metrics.delivered
        and dual_metrics.misses == 0
    )
    checks["healthy dual bus never fails over"] = dual_clean.failovers == 0
    checks["jam threshold exceeds legitimate collision runs"] = (
        dc_metrics.delivered == reference_metrics.delivered
    )
    result = ExperimentResult(
        experiment_id="EXT-DUAL",
        title="Dual-bus failover under a mid-run bus failure",
        headers=[
            "configuration",
            "delivered",
            "misses",
            "failovers",
            "max_latency",
        ],
        rows=rows,
        checks=checks,
    )
    result.notes.append(
        f"bus A jammed at t={fail_at} ({fail_at / _MS:.0f} ms); failover "
        f"threshold = {threshold} consecutive collision slots."
    )
    return result
