"""Registry mapping experiment ids to their run() callables.

The CLI (``python -m repro.experiments``) and the benchmark suite both
resolve experiments through this table; DESIGN.md's per-experiment index
uses the same ids.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.experiments import (
    ablation_branching,
    ablation_burst,
    ablation_pcp,
    ablation_theta,
    closed_form_check,
    ext_dual,
    ext_host,
    ext_noise,
    ext_util,
    ext_xor,
    fc_validation,
    feasibility_sweep,
    fig1,
    fig2,
    multitree,
    protocol_comparison,
    recursions,
    sim_vs_bound,
    tightness,
)
from repro.experiments.base import ExperimentResult

__all__ = ["EXPERIMENTS", "run_experiment", "run_all"]

EXPERIMENTS: dict[str, Callable[[], ExperimentResult]] = {
    "FIG1": fig1.run,
    "FIG2": fig2.run,
    "EQ2-8": recursions.run,
    "EQ9-10-15": closed_form_check.run,
    "EQ11-14": tightness.run,
    "EQ16-19": multitree.run,
    "FC": feasibility_sweep.run,
    "SIM-XI": sim_vs_bound.run,
    "SIM-FC": fc_validation.run,
    "PROTO": protocol_comparison.run,
    "ABL-M": ablation_branching.run,
    "ABL-THETA": ablation_theta.run,
    "ABL-BURST": ablation_burst.run,
    "ABL-PCP": ablation_pcp.run,
    "EXT-XOR": ext_xor.run,
    "EXT-DUAL": ext_dual.run,
    "EXT-HOST": ext_host.run,
    "EXT-NOISE": ext_noise.run,
    "EXT-UTIL": ext_util.run,
}


def run_experiment(experiment_id: str) -> ExperimentResult:
    """Run one experiment by its DESIGN.md id."""
    try:
        runner = EXPERIMENTS[experiment_id]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known ids: {known}"
        ) from None
    return runner()


def run_all() -> list[ExperimentResult]:
    """Run the full suite in index order."""
    return [runner() for runner in EXPERIMENTS.values()]
