"""Ordered registry of experiments, spec-based.

Each experiment module registers its runner and metadata through
:mod:`repro.experiments.catalog`; importing this module pulls in all of
them and exposes the suite as ``EXPERIMENTS`` — an ordered mapping from
DESIGN.md id to :class:`~repro.experiments.catalog.ExperimentEntry`
(entries are callable, so ``EXPERIMENTS["FIG1"]()`` still runs one).

The CLI (``python -m repro.experiments``), the benchmark suite and the
runtime executor's worker processes all resolve experiments here;
:func:`run_spec` is the single entry point a
:class:`~repro.runtime.spec.RunSpec` executes through.
"""

from __future__ import annotations

# The imports run each module's @register decoration; the names themselves
# are otherwise unused.
from repro.experiments import (  # noqa: F401
    ablation_branching,
    ablation_burst,
    ablation_pcp,
    ablation_theta,
    closed_form_check,
    ext_dual,
    ext_host,
    ext_noise,
    ext_util,
    ext_xor,
    fabric_bound,
    fc_validation,
    feasibility_sweep,
    fig1,
    fig2,
    multitree,
    protocol_comparison,
    recursions,
    serve_check,
    sim_vs_bound,
    tightness,
)
from repro.experiments.base import ExperimentResult
from repro.experiments.catalog import ExperimentEntry, entries, get_entry
from repro.faults.context import use_fault_plan
from repro.net.engine import use_engine
from repro.obs.context import current_telemetry
from repro.runtime.spec import RunSpec

__all__ = [
    "EXPERIMENTS",
    "ExperimentEntry",
    "run_experiment",
    "run_spec",
    "run_all",
]

#: Canonical suite order (DESIGN.md's per-experiment index order).
_ORDER: tuple[str, ...] = (
    "FIG1",
    "FIG2",
    "EQ2-8",
    "EQ9-10-15",
    "EQ11-14",
    "EQ16-19",
    "FC",
    "SIM-XI",
    "SIM-FC",
    "PROTO",
    "ABL-M",
    "ABL-THETA",
    "ABL-BURST",
    "ABL-PCP",
    "EXT-XOR",
    "EXT-DUAL",
    "EXT-HOST",
    "EXT-NOISE",
    "EXT-UTIL",
    "FABRIC",
    "SERVE-CHECK",
)

EXPERIMENTS: dict[str, ExperimentEntry] = {
    experiment_id: get_entry(experiment_id) for experiment_id in _ORDER
}

_unindexed = set(entries()) - set(_ORDER)
if _unindexed:  # pragma: no cover - registration/index drift guard
    raise RuntimeError(
        f"experiments registered but missing from registry order: "
        f"{sorted(_unindexed)}"
    )


def run_experiment(experiment_id: str) -> ExperimentResult:
    """Run one experiment by its DESIGN.md id, with default parameters."""
    try:
        entry = EXPERIMENTS[experiment_id]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known ids: {known}"
        ) from None
    return entry()


def run_spec(spec: RunSpec) -> ExperimentResult:
    """Execute a RunSpec: resolve the entry, apply params, seed, engine
    and fault plan.

    The spec's engine choice and fault plan are applied as scoped process
    defaults (:func:`repro.net.engine.use_engine` /
    :func:`repro.faults.context.use_fault_plan`) so they reach every
    simulation the experiment builds, without threading arguments through
    each runner's signature.  This also holds inside executor worker
    processes: the spec travels to the worker by pickle and is applied
    there.  Unlike the engine, the fault plan is part of the spec's
    content hash, so faulted and fault-free runs never share a cache
    entry.
    """
    telemetry = current_telemetry()
    with telemetry.span("spec/resolve"):
        try:
            entry = EXPERIMENTS[spec.experiment_id]
        except KeyError:
            known = ", ".join(sorted(EXPERIMENTS))
            raise KeyError(
                f"unknown experiment {spec.experiment_id!r}; known ids: "
                f"{known}"
            ) from None
        kwargs = entry.kwargs_for(spec)
    with telemetry.span("spec/execute"):
        with use_engine(spec.engine), use_fault_plan(spec.fault_plan()):
            result = entry.runner(**kwargs)
    if result.experiment_id != spec.experiment_id:
        raise RuntimeError(
            f"experiment {spec.experiment_id} returned a result labelled "
            f"{result.experiment_id!r}"
        )
    return result


def run_all() -> list[ExperimentResult]:
    """Run the full suite in index order."""
    return [entry() for entry in EXPERIMENTS.values()]
