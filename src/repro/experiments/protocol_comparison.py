"""PROTO — CSMA/DDCR against its baselines across a load sweep.

One workload family, identical adversarial arrivals, four protocols
(CSMA/DDCR, CSMA-CD/BEB, CSMA/DCR, TDMA), load scaled from light to past
saturation.  Reported per (protocol, load): deadline-miss ratio, delivered
count, channel utilization, worst latency and deadline inversions.

Shape claims (what must hold even on a simulated substrate):

* CSMA/DDCR never misses at loads the feasibility conditions accept;
* there is a load where CSMA-CD/BEB already misses deadlines while DDCR
  still misses none — the determinism gap the paper is about;
* BEB suffers (far) more deadline inversions than the deterministic
  protocols (its backoff is deadline-blind and random);
* past saturation (FCs reject), no contention protocol holds the line —
  hard real-time guarantees only exist inside the feasibility region.
"""

from __future__ import annotations

from repro.analysis.metrics import summarize
from repro.core.feasibility import check_feasibility
from repro.experiments.base import ExperimentResult
from repro.experiments.catalog import register
from repro.experiments.harness import (
    PROTOCOL_FACTORIES,
    build_simulation,
    default_ddcr_config,
)
from repro.model.workloads import uniform_problem
from repro.net.phy import GIGABIT_ETHERNET, MediumProfile
from repro.sweep import Campaign, register_campaign

__all__ = ["run", "DEFAULT_SCALES"]

_MS = 1_000_000

DEFAULT_SCALES: tuple[float, ...] = (2.0, 4.0, 8.0, 16.0)


def _problem(scale: float):
    return uniform_problem(
        z=8,
        length=16_000,
        deadline=2 * _MS,
        a=2,
        w=4 * _MS,
        scale=scale,
        nu=1,
    )


@register(
    "PROTO",
    title="CSMA/DDCR vs baselines across a load sweep",
    kind="simulation",
    seed_param="seed",
)
def run(
    scales: tuple[float, ...] = DEFAULT_SCALES,
    medium: MediumProfile = GIGABIT_ETHERNET,
    horizon: int = 24 * _MS,
    seed: int = 7,
) -> ExperimentResult:
    """Sweep load scales across the full protocol comparison set."""
    rows: list[list[object]] = []
    checks: dict[str, bool] = {}
    misses: dict[tuple[str, float], int] = {}
    inversions: dict[tuple[str, float], int] = {}
    feasible_scales: list[float] = []
    for scale in scales:
        problem = _problem(scale)
        config = default_ddcr_config(problem, medium)
        feasible = check_feasibility(
            problem, medium, config.tree_parameters()
        ).feasible
        if feasible:
            feasible_scales.append(scale)
        for name, factory in PROTOCOL_FACTORIES(problem, medium, seed).items():
            simulation = build_simulation(problem, medium, factory)
            metrics = summarize(simulation.run(horizon))
            misses[(name, scale)] = metrics.misses
            inversions[(name, scale)] = metrics.inversions
            rows.append(
                [
                    name,
                    scale,
                    feasible,
                    metrics.delivered,
                    metrics.misses,
                    round(metrics.miss_ratio, 4),
                    round(metrics.utilization, 4),
                    metrics.max_latency,
                    metrics.inversions,
                ]
            )
    for scale in feasible_scales:
        checks[f"DDCR zero misses at feasible scale {scale}"] = (
            misses[("CSMA/DDCR", scale)] == 0
        )
    checks["a load exists where BEB misses but DDCR does not"] = any(
        misses[("CSMA-CD/BEB", scale)] > 0
        and misses[("CSMA/DDCR", scale)] == 0
        for scale in scales
    )
    checks["BEB has the most deadline inversions at every load"] = all(
        inversions[("CSMA-CD/BEB", scale)]
        >= max(
            inversions[(name, scale)]
            for name in ("CSMA/DDCR", "CSMA/DCR", "TDMA")
        )
        for scale in scales
        if any(inversions[(n, scale)] for n, s in inversions if s == scale)
    )
    checks["DDCR no inversions at feasible loads"] = all(
        inversions[("CSMA/DDCR", scale)] == 0 for scale in feasible_scales
    )
    return ExperimentResult(
        experiment_id="PROTO",
        title="Protocol comparison under the unimodal-arbitrary adversary",
        headers=[
            "protocol",
            "scale",
            "fc_ok",
            "delivered",
            "misses",
            "miss_ratio",
            "util",
            "max_latency",
            "inversions",
        ],
        rows=rows,
        checks=checks,
    )


# The canonical campaign over this experiment: seed replicas of the full
# comparison (``python -m repro.experiments sweep proto-seeds``).  Each
# point runs the complete scale sweep — the cross-scale checks ("a load
# exists where BEB misses but DDCR does not") only hold over the whole
# set, so the replica axis is the seed, never the scale.
register_campaign(
    Campaign.make(
        "proto-seeds",
        experiment="PROTO",
        seeds=(7, 11, 13),
        batch_size=1,
        description="PROTO protocol comparison across adversary seeds",
    )
)
