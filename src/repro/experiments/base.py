"""Common shape for experiment modules.

Every experiment in DESIGN.md's per-experiment index is a function
returning an :class:`ExperimentResult`: an id, headers + rows (the same
rows/series the paper's figure or bound shows), free-form notes, and a
``checks`` dict of named boolean assertions capturing the *shape* the
paper claims (who wins, where the bound sits).  Benches print
``result.render()`` and assert ``result.all_checks_pass``.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

from repro.analysis.report import format_table, to_csv

__all__ = ["ExperimentResult"]


@dataclasses.dataclass
class ExperimentResult:
    """Output of one experiment run."""

    experiment_id: str
    title: str
    headers: Sequence[str]
    rows: list[Sequence[object]]
    checks: dict[str, bool] = dataclasses.field(default_factory=dict)
    notes: list[str] = dataclasses.field(default_factory=list)
    #: Optional vector renderings keyed by file stem (e.g. {"fig1": "<svg…"}).
    svg_figures: dict[str, str] = dataclasses.field(default_factory=dict)

    @property
    def all_checks_pass(self) -> bool:
        return all(self.checks.values())

    def failed_checks(self) -> list[str]:
        return [name for name, ok in self.checks.items() if not ok]

    def render(self) -> str:
        """Human-readable report: table + checks + notes."""
        parts = [
            f"== {self.experiment_id}: {self.title} ==",
            format_table(self.headers, self.rows),
        ]
        if self.checks:
            parts.append("checks:")
            for name, ok in self.checks.items():
                parts.append(f"  [{'PASS' if ok else 'FAIL'}] {name}")
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts)

    def csv(self) -> str:
        return to_csv(self.headers, self.rows)
