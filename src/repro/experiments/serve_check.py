"""SERVE-CHECK — the admission service's decisions survive scrutiny.

Two modes share one experiment id so both the service's background
counter-check and the sweep campaigns resolve through the same cached
runner:

* **admitted-set mode** (``classes`` given): the service hands over its
  admitted set as frozen tuples; the runner materialises it as an
  :class:`~repro.model.problem.HRTDMProblem`, re-derives feasibility
  through the scalar oracle *and* a fresh incremental engine
  (digest-compared row by row), then — when feasible — runs CSMA/DDCR
  under the peak-load adversary and asserts zero deadline misses.  A
  failed check here is exactly what the service reports as a
  ``sim-check-failed`` incident.
* **trace mode** (``classes=None``): generate a synthetic churn trace,
  drive it through a fresh :class:`~repro.serve.service.AdmissionService`
  twice (decision logs must match byte for byte), then apply the same
  oracle + simulation scrutiny to the surviving set.  This is the mode
  the ``serve-traces`` sweep campaign fans out over.
"""

from __future__ import annotations

from repro.analysis.metrics import summarize
from repro.core.feas_engine import FeasibilityEngine
from repro.core.feasibility import check_feasibility
from repro.experiments.base import ExperimentResult
from repro.experiments.catalog import register
from repro.experiments.harness import (
    build_simulation,
    ddcr_factory,
    default_ddcr_config,
)
from repro.model.message import DensityBound, MessageClass
from repro.model.problem import HRTDMProblem
from repro.model.source import SourceSpec
from repro.serve.model import Request
from repro.serve.service import MEDIA, AdmissionService, ServeConfig
from repro.serve.traces import TraceConfig, generate_trace

__all__ = ["run", "problem_from_classes"]


def problem_from_classes(
    classes: tuple, static_q: int, static_m: int
) -> HRTDMProblem:
    """Rebuild an instance from the service's frozen-tuple class set.

    ``classes`` rows are ``(source_id, nu, name, length, deadline, a,
    w)`` in engine order; static indices are assigned contiguously, the
    same layout :meth:`FeasibilityEngine.to_problem` uses, so the two
    materialisations agree exactly.
    """
    order: list[int] = []
    by_source: dict[int, tuple[int, list[MessageClass]]] = {}
    for source_id, nu, name, length, deadline, a, w in classes:
        if source_id not in by_source:
            order.append(source_id)
            by_source[source_id] = (nu, [])
        by_source[source_id][1].append(
            MessageClass(
                name=name,
                length=length,
                deadline=deadline,
                bound=DensityBound(a=a, w=w),
            )
        )
    sources = []
    offset = 0
    for source_id in order:
        nu, members = by_source[source_id]
        sources.append(
            SourceSpec(
                source_id=source_id,
                message_classes=tuple(members),
                static_indices=tuple(range(offset, offset + nu)),
            )
        )
        offset += nu
    return HRTDMProblem(
        sources=tuple(sources), static_q=static_q, static_m=static_m
    )


def _scrutinise(
    problem: HRTDMProblem,
    medium_profile,
    trees,
    horizon: int,
    rows: list,
    checks: dict,
    notes: list,
) -> None:
    """Oracle + engine + (if feasible) simulation checks on one instance."""
    oracle = check_feasibility(problem, medium_profile, trees)
    engine = FeasibilityEngine.from_problem(problem, medium_profile, trees)
    mine = engine.report()
    checks["engine-matches-oracle"] = len(mine.classes) == len(
        oracle.classes
    ) and all(
        row == expected for row, expected in zip(mine.classes, oracle.classes)
    )
    checks["set-feasible"] = oracle.feasible
    for row in oracle.classes:
        rows.append(
            [row.source_id, row.class_name, row.bound, row.deadline,
             row.slack, row.feasible]
        )
    if not oracle.feasible:
        notes.append("set infeasible: simulation check skipped")
        return
    config = default_ddcr_config(
        problem, medium_profile, time_f=trees.time_f, time_m=trees.time_m
    )
    simulation = build_simulation(problem, medium_profile, ddcr_factory(config))
    metrics = summarize(simulation.run(horizon))
    checks["sim-no-misses"] = metrics.misses == 0
    notes.append(
        f"simulation: {metrics.delivered} delivered, "
        f"{metrics.misses} missed, utilization "
        f"{metrics.utilization:.3f} over {horizon} bit-times"
    )


@register(
    "SERVE-CHECK",
    title="Admission-service decisions counter-checked by oracle + DDCR sim",
    kind="simulation",
    seed_param="seed",
)
def run(
    classes: tuple | None = None,
    static_q: int = 64,
    static_m: int = 2,
    time_f: int = 64,
    time_m: int = 4,
    horizon: int = 4_000_000,
    medium: str = "gigabit-ethernet",
    events: int = 48,
    stations: int = 12,
    template: str = "city",
    trace_seed: int = 7,
    seed: int = 0,
) -> ExperimentResult:
    """Counter-check an admitted set (or a whole synthetic trace)."""
    medium_profile = MEDIA[medium]
    config = ServeConfig(
        static_q=static_q,
        static_m=static_m,
        time_f=time_f,
        time_m=time_m,
        medium=medium,
    )
    trees = config.trees()
    rows: list = []
    checks: dict[str, bool] = {}
    notes: list[str] = []
    if classes is None:
        trace = generate_trace(
            TraceConfig(
                events=events,
                stations=stations,
                seed=trace_seed + seed,
                template=template,
            )
        )
        first = AdmissionService(config)
        decisions = first.run_trace(trace)
        second = AdmissionService(config)
        rerun = second.run_trace(
            [Request.from_dict(request.to_dict()) for request in trace]
        )
        checks["decisions-deterministic"] = [
            d.to_json() for d in decisions
        ] == [d.to_json() for d in rerun]
        checks["no-incidents"] = not first.incidents
        admitted = sum(1 for d in decisions if d.kind == "join"
                       and d.verdict == "admit")
        rejected = sum(1 for d in decisions if d.verdict == "reject")
        notes.append(
            f"trace: {len(trace)} events, {admitted} admits, "
            f"{rejected} rejects, {first.class_count} classes survive"
        )
        classes = first.frozen_classes()
    if classes:
        _scrutinise(
            problem_from_classes(classes, static_q, static_m),
            medium_profile,
            trees,
            horizon,
            rows,
            checks,
            notes,
        )
    else:
        checks["set-feasible"] = True
        notes.append("empty admitted set: trivially feasible, no simulation")
    return ExperimentResult(
        experiment_id="SERVE-CHECK",
        title="Admission-service decisions counter-checked by oracle + "
              "DDCR sim",
        headers=["source", "class", "B_DDCR", "deadline", "slack",
                 "feasible"],
        rows=rows,
        checks=checks,
        notes=notes,
    )
