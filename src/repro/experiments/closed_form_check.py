"""EQ9-10, EQ15 — the closed form of xi over the full (m, t, k) grid.

Asserts bit-for-bit equality between the paper's closed forms and the
ground-truth DP on Eq. 1: Eq. 9 (even restriction), Eq. 10 (all k), and
Eq. 15 (the exact linear regime over ``[2t/m, t]``).  For the smallest
shapes the DP itself is cross-checked against brute-force enumeration of
every leaf placement (executable proof that the recursion models the
search).
"""

from __future__ import annotations

from repro.core.closed_form import (
    xi_closed_form,
    xi_even_closed_form,
    xi_linear_regime,
)
from repro.core.search_cost import exact_cost_table, xi_bruteforce
from repro.experiments.base import ExperimentResult
from repro.experiments.catalog import register

__all__ = ["run", "DEFAULT_SHAPES", "BRUTE_SHAPES"]

DEFAULT_SHAPES: tuple[tuple[int, int], ...] = (
    (2, 4),
    (2, 32),
    (2, 256),
    (2, 1024),
    (3, 27),
    (3, 243),
    (4, 64),
    (4, 1024),
    (5, 125),
    (6, 216),
    (8, 512),
)

#: Shapes small enough for exhaustive placement enumeration.
BRUTE_SHAPES: tuple[tuple[int, int], ...] = ((2, 8), (2, 16), (3, 9), (4, 16))


@register(
    "EQ9-10-15",
    title="Closed form of xi over the (m, t, k) grid (Eq. 9-10, 15)",
    kind="analytic",
)
def run(
    shapes: tuple[tuple[int, int], ...] = DEFAULT_SHAPES,
    brute_shapes: tuple[tuple[int, int], ...] = BRUTE_SHAPES,
) -> ExperimentResult:
    """Validate Eq. 9, Eq. 10 and Eq. 15 across the grid."""
    rows: list[list[object]] = []
    checks: dict[str, bool] = {}
    for m, t in shapes:
        dp = exact_cost_table(m, t)
        eq10 = all(xi_closed_form(k, t, m) == dp[k] for k in range(t + 1))
        eq9 = all(
            xi_even_closed_form(p, t, m) == dp[2 * p]
            for p in range(t // 2 + 1)
        )
        eq15 = all(
            xi_linear_regime(k, t, m) == dp[k]
            for k in range(2 * t // m, t + 1)
        )
        rows.append([m, t, eq9, eq10, eq15])
        checks[f"m={m} t={t} closed forms"] = eq9 and eq10 and eq15
    for m, t in brute_shapes:
        dp = exact_cost_table(m, t)
        brute_ok = all(
            xi_bruteforce(k, t, m) == dp[k] for k in range(t + 1)
        )
        rows.append([m, t, "brute", brute_ok, ""])
        checks[f"m={m} t={t} DP == exhaustive search"] = brute_ok
    return ExperimentResult(
        experiment_id="EQ9-10-15",
        title="Closed forms of xi vs ground-truth DP (and exhaustive search)",
        headers=["m", "t", "eq9", "eq10", "eq15"],
        rows=rows,
        checks=checks,
    )
