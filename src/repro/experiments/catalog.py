"""Registration substrate for experiment modules.

Experiment modules declare themselves with :func:`register`::

    @register("FIG1", title="...", kind="analytic")
    def run(m: int = 4, t: int = 64) -> ExperimentResult: ...

which records an :class:`ExperimentEntry` — the runner plus the metadata
the runtime needs (display title, analytic vs simulation, and which
keyword receives a :class:`~repro.runtime.spec.RunSpec` root seed).  The
public ordered table lives in :mod:`repro.experiments.registry`, which
imports every experiment module and thereby populates this catalog; this
module deliberately imports nothing from the experiment modules so
registration cannot cycle.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable

from repro.experiments.base import ExperimentResult
from repro.runtime.spec import RunSpec

__all__ = ["ExperimentEntry", "register", "entries", "get_entry"]

#: Legal values for :attr:`ExperimentEntry.kind`.
KINDS = ("analytic", "simulation")


@dataclasses.dataclass(frozen=True)
class ExperimentEntry:
    """One registered experiment: runner plus runtime metadata."""

    experiment_id: str
    runner: Callable[..., ExperimentResult]
    title: str
    kind: str
    #: Name of the runner keyword that receives a spec's root seed, or
    #: ``None`` for experiments with no stochastic inputs.
    seed_param: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(
                f"kind must be one of {KINDS}, got {self.kind!r}"
            )

    def __call__(self, **overrides: object) -> ExperimentResult:
        return self.runner(**overrides)

    def spec(
        self, *, root_seed: int | None = None, **params: object
    ) -> RunSpec:
        """A RunSpec targeting this experiment."""
        return RunSpec.make(
            self.experiment_id, root_seed=root_seed, **params
        )

    def kwargs_for(self, spec: RunSpec) -> dict[str, object]:
        """Runner keyword arguments a spec resolves to.

        A ``root_seed`` is injected through :attr:`seed_param` when both
        are present; a seed on a seedless experiment is an error rather
        than a silently different computation.
        """
        kwargs = spec.kwargs()
        if spec.root_seed is not None:
            if self.seed_param is None:
                raise ValueError(
                    f"experiment {self.experiment_id} takes no seed, but "
                    f"spec carries root_seed={spec.root_seed}"
                )
            kwargs[self.seed_param] = spec.root_seed
        return kwargs


_CATALOG: dict[str, ExperimentEntry] = {}


def register(
    experiment_id: str,
    *,
    title: str,
    kind: str,
    seed_param: str | None = None,
) -> Callable[[Callable[..., ExperimentResult]], Callable[..., ExperimentResult]]:
    """Class the decorated ``run()`` under ``experiment_id`` (DESIGN.md id)."""

    def decorate(
        runner: Callable[..., ExperimentResult],
    ) -> Callable[..., ExperimentResult]:
        if experiment_id in _CATALOG:
            raise ValueError(
                f"experiment id {experiment_id!r} registered twice"
            )
        _CATALOG[experiment_id] = ExperimentEntry(
            experiment_id=experiment_id,
            runner=runner,
            title=title,
            kind=kind,
            seed_param=seed_param,
        )
        return runner

    return decorate


def entries() -> dict[str, ExperimentEntry]:
    """Snapshot of everything registered so far."""
    return dict(_CATALOG)


def get_entry(experiment_id: str) -> ExperimentEntry:
    try:
        return _CATALOG[experiment_id]
    except KeyError:
        known = ", ".join(sorted(_CATALOG))
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known ids: {known}"
        ) from None
