"""CLI: regenerate the paper's figures and bound tables.

Usage::

    python -m repro.experiments                 # list experiments
    python -m repro.experiments FIG1 FIG2       # run specific experiments
    python -m repro.experiments --all           # run the full suite
    python -m repro.experiments --all --jobs 4  # fan out over processes
    python -m repro.experiments --all --force   # ignore cached results
    python -m repro.experiments FIG1 --csv out  # also write CSV files
    python -m repro.experiments PROTO --engine des   # force the DES engine
    python -m repro.experiments PROTO --fault crash  # preset fault plan
    python -m repro.experiments PROTO --faults plan.json  # plan from a file
    python -m repro.experiments FIG1 --telemetry out.jsonl  # run manifests
    python -m repro.experiments FIG1 --profile       # cProfile each run
    python -m repro.experiments sweep                # sweep campaigns

``sweep`` dispatches to the campaign runner (:mod:`repro.sweep.cli`):
declarative parameter grids sharded over the executor with resumable
JSONL checkpoints.  The common flags (``--jobs``, ``--seed``,
``--engine``, ``--telemetry``, cache options) are shared parent parsers
(:mod:`repro.cliopts`), spelled identically across every repro CLI.

Runs resolve through the :mod:`repro.runtime` executor: results are
cached content-addressed under ``--cache-dir`` (default ``.repro-cache``),
so a second invocation after no code change replays from disk instead of
re-simulating.  Per-run timing/progress records stream to stderr; reports
print to stdout in suite order, followed by one cache accounting line.

``--telemetry PATH`` collects a :class:`~repro.obs.manifest.RunTelemetry`
document per run (slot counters, latency histograms, span timings,
provenance) and writes them as JSON Lines; render them with
``python -m repro.tools.obs summarize PATH``.  ``--profile`` wraps each
run in :mod:`cProfile` (forcing serial execution — profiles cannot cross
process boundaries) and prints a per-run pstats summary to stderr.
"""

from __future__ import annotations

import argparse
import cProfile
import io
import pathlib
import pstats
import sys

from repro.cliopts import cache_options, execution_options, validate_jobs
from repro.experiments.registry import EXPERIMENTS
from repro.faults.models import PLAN_PRESETS, FaultPlan, preset_plan
from repro.obs.manifest import write_manifests
from repro.runtime import ParallelExecutor, ResultCache, RunSpec


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the paper's figures and bound tables.",
        parents=[execution_options(), cache_options()],
    )
    parser.add_argument(
        "ids",
        nargs="*",
        help="experiment ids (see DESIGN.md); empty lists them; "
        "'sweep' dispatches to the campaign runner",
    )
    parser.add_argument(
        "--all", action="store_true", help="run the full suite"
    )
    parser.add_argument(
        "--csv",
        metavar="DIR",
        help="also write each experiment's rows as CSV into DIR",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help=(
            "wrap each run in cProfile and print a pstats summary to "
            "stderr (forces serial execution)"
        ),
    )
    faults = parser.add_mutually_exclusive_group()
    faults.add_argument(
        "--faults",
        metavar="PLAN.json",
        help=(
            "inject a fault plan (JSON file, see repro.faults) into every "
            "simulation the experiments build; faults change results, so "
            "they ARE part of the cache key (unlike --engine)"
        ),
    )
    faults.add_argument(
        "--fault",
        choices=sorted(PLAN_PRESETS),
        default=None,
        help="inject a named preset fault plan",
    )
    return parser


def _list_experiments() -> None:
    print("available experiments:")
    for experiment_id, entry in EXPERIMENTS.items():
        print(f"  {experiment_id:<12} [{entry.kind}] {entry.title}")


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "sweep":
        from repro.sweep.cli import main as sweep_main

        return sweep_main(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    validate_jobs(parser, args.jobs)
    ids = list(EXPERIMENTS) if args.all else args.ids
    if not ids:
        _list_experiments()
        return 0
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        known = ", ".join(EXPERIMENTS)
        parser.error(
            f"unknown experiment ids: {', '.join(unknown)} "
            f"(known: {known})"
        )
    plan = None
    if args.faults:
        try:
            plan = FaultPlan.load(args.faults)
        except (OSError, ValueError, KeyError, TypeError) as exc:
            parser.error(f"--faults {args.faults}: {exc}")
    elif args.fault:
        plan = preset_plan(args.fault)
    specs = []
    for experiment_id in ids:
        root_seed = (
            args.seed
            if args.seed is not None
            and EXPERIMENTS[experiment_id].seed_param is not None
            else None
        )
        specs.append(
            RunSpec.make(
                experiment_id,
                root_seed=root_seed,
                engine=args.engine,
                faults=plan,
            )
        )
    cache = None if args.no_cache else ResultCache(args.cache_dir)

    def progress(record, index, total):
        print(
            f"[{index + 1:>2}/{total}] {record.describe()}",
            file=sys.stderr,
            flush=True,
        )

    jobs = args.jobs
    if args.profile and jobs > 1:
        print(
            "--profile forces serial execution (profiles cannot cross "
            "process boundaries); ignoring --jobs",
            file=sys.stderr,
        )
        jobs = 1
    executor = ParallelExecutor(
        jobs=jobs,
        cache=cache,
        force=args.force,
        progress=progress,
        collect_telemetry=args.telemetry is not None,
    )
    if args.profile:
        records = []
        for spec in specs:
            profiler = cProfile.Profile()
            profiler.enable()
            try:
                records.extend(executor.run([spec]))
            finally:
                profiler.disable()
            stream = io.StringIO()
            stats = pstats.Stats(profiler, stream=stream)
            stats.sort_stats("cumulative").print_stats(15)
            print(f"profile [{spec.experiment_id}]:", file=sys.stderr)
            print(stream.getvalue(), file=sys.stderr, end="")
    else:
        records = executor.run(specs)
    if args.telemetry is not None:
        manifests = [
            record.telemetry
            for record in records
            if record.telemetry is not None
        ]
        written = write_manifests(args.telemetry, manifests)
        print(
            f"wrote {written} telemetry manifest(s) to {args.telemetry}",
            file=sys.stderr,
        )

    failures = 0
    for record in records:
        result = record.result
        print(result.render())
        print()
        if args.csv:
            directory = pathlib.Path(args.csv)
            directory.mkdir(parents=True, exist_ok=True)
            path = directory / f"{result.experiment_id.lower()}.csv"
            path.write_text(result.csv() + "\n")
            print(f"wrote {path}")
            for stem, svg in result.svg_figures.items():
                figure_path = directory / f"{stem}.svg"
                figure_path.write_text(svg + "\n")
                print(f"wrote {figure_path}")
        if not result.all_checks_pass:
            failures += 1
    executed = executor.submissions
    cached = len(records) - executed
    total_time = sum(record.duration for record in records)
    print(
        f"suite: {len(records)} run(s), {executed} executed, "
        f"{cached} from cache, {total_time:.3f}s simulated work, "
        f"{failures} failed",
        file=sys.stderr,
    )
    if cache is not None:
        print(cache.stats.summary(), file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
