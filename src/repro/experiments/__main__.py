"""CLI: regenerate the paper's figures and bound tables.

Usage::

    python -m repro.experiments                 # list experiments
    python -m repro.experiments FIG1 FIG2       # run specific experiments
    python -m repro.experiments --all           # run the full suite
    python -m repro.experiments FIG1 --csv out  # also write CSV files
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.experiments.registry import EXPERIMENTS, run_experiment


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the paper's figures and bound tables.",
    )
    parser.add_argument(
        "ids",
        nargs="*",
        help="experiment ids (see DESIGN.md); empty lists them",
    )
    parser.add_argument(
        "--all", action="store_true", help="run the full suite"
    )
    parser.add_argument(
        "--csv",
        metavar="DIR",
        help="also write each experiment's rows as CSV into DIR",
    )
    args = parser.parse_args(argv)
    ids = list(EXPERIMENTS) if args.all else args.ids
    if not ids:
        print("available experiments:")
        for experiment_id in EXPERIMENTS:
            print(f"  {experiment_id}")
        return 0
    failures = 0
    for experiment_id in ids:
        result = run_experiment(experiment_id)
        print(result.render())
        print()
        if args.csv:
            directory = pathlib.Path(args.csv)
            directory.mkdir(parents=True, exist_ok=True)
            path = directory / f"{experiment_id.lower()}.csv"
            path.write_text(result.csv() + "\n")
            print(f"wrote {path}")
            for stem, svg in result.svg_figures.items():
                figure_path = directory / f"{stem}.svg"
                figure_path.write_text(svg + "\n")
                print(f"wrote {figure_path}")
        if not result.all_checks_pass:
            failures += 1
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
