"""repro — reproduction of Hermant & Le Lann, "A Protocol and Correctness
Proofs for Real-Time High-Performance Broadcast Networks" (ICDCS 1998).

Subpackages:

* :mod:`repro.core`      — Problems P1/P2 and the feasibility conditions.
* :mod:`repro.model`     — the HRTDM problem model (messages, arrivals).
* :mod:`repro.sim`       — discrete-event simulation substrate.
* :mod:`repro.net`       — slotted broadcast-medium simulator.
* :mod:`repro.protocols` — CSMA/DDCR and baseline MAC protocols.
* :mod:`repro.analysis`  — metrics, bound checking, adversaries, reports.
* :mod:`repro.experiments` — one module per paper figure/bound (see DESIGN.md).
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
