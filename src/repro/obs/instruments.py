"""Typed telemetry instruments and the :class:`Telemetry` registry.

Four instrument kinds cover everything the stack measures:

* :class:`Counter` — monotonically increasing event counts (slot
  outcomes, fault firings, cache writes);
* :class:`Gauge` — last-value-wins observations (cache hit totals at the
  end of a run);
* :class:`Histogram` — fixed-bucket distributions (per-class latency,
  search depth).  Buckets are fixed at creation, so merging and diffing
  two histograms of the same name is always well defined and recording
  never allocates;
* span timers (:meth:`Telemetry.span`) — nested wall-clock sections
  forming a call tree (spec resolve / cache lookup / execute).

Determinism contract: counters, gauges and histograms are pure functions
of the simulated run, so two engines driving the same run must produce
byte-identical snapshots (the differential suite asserts this).  Span
*structure* (names, nesting, call counts) is deterministic too; span
*durations* are wall-clock and excluded from the determinism contract.

The disabled state is :data:`NULL_TELEMETRY`, a process-wide singleton
whose instruments are inert.  Hot loops follow the ``NULL_TRACE``
hoisted-gate idiom: check ``telemetry.enabled`` once, outside the loop,
and skip instrument calls entirely when it is off — the null instruments
exist only so that unconditioned call sites stay safe.
"""

from __future__ import annotations

import bisect
import time
from collections.abc import Iterator, Sequence
from contextlib import contextmanager

__all__ = [
    "Counter",
    "DECISION_LATENCY_EDGES",
    "Gauge",
    "Histogram",
    "LATENCY_EDGES",
    "NULL_TELEMETRY",
    "SEARCH_DEPTH_EDGES",
    "SpanNode",
    "Telemetry",
]

#: Default latency bucket upper bounds, in bit-times: powers of two from
#: one slot-ish (64) up past the longest deadlines the workloads use.
#: Geometric buckets keep relative quantile error bounded (~2x) across
#: five orders of magnitude without per-workload tuning.
LATENCY_EDGES: tuple[int, ...] = tuple(1 << k for k in range(6, 26))

#: Admission-decision latency bucket upper bounds, in *microseconds of
#: wall clock* (the one instrument measuring real time, not simulated
#: bit-times): powers of two from 1 us to ~1 s.  Wall-clock values are
#: telemetry only — they never enter the decision log, which must stay a
#: pure function of the request stream.
DECISION_LATENCY_EDGES: tuple[int, ...] = tuple(1 << k for k in range(0, 21))

#: Default search-depth bucket upper bounds, in wasted slots per search
#: run.  Linear at the bottom (where the paper's xi bounds live), then
#: doubling; anything above 256 is pathological and lands in overflow.
SEARCH_DEPTH_EDGES: tuple[int, ...] = (
    0, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 256,
)


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def snapshot(self) -> int:
        return self.value


class Gauge:
    """A last-value-wins observation."""

    __slots__ = ("name", "value")

    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def snapshot(self) -> float:
        return self.value


class Histogram:
    """A fixed-bucket histogram with exact count/sum/min/max.

    ``edges`` are inclusive upper bounds of the finite buckets, strictly
    increasing; one implicit overflow bucket catches everything above the
    last edge.  Quantiles are estimated as the upper edge of the bucket
    containing the target rank (overflow reports the exact observed max),
    so a quantile never under-reports — the conservative direction for
    deadline analysis.
    """

    __slots__ = ("name", "edges", "counts", "count", "total", "min", "max")

    kind = "histogram"

    def __init__(self, name: str, edges: Sequence[float]) -> None:
        edges = tuple(edges)
        if not edges:
            raise ValueError("histogram needs at least one bucket edge")
        if any(b <= a for a, b in zip(edges, edges[1:])):
            raise ValueError(f"bucket edges must strictly increase: {edges}")
        self.name = name
        self.edges = edges
        self.counts = [0] * (len(edges) + 1)
        self.count = 0
        self.total = 0
        self.min: float | None = None
        self.max: float | None = None

    def record(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.edges, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def quantile(self, q: float) -> float | None:
        """Upper-edge estimate of the ``q``-quantile (``0 <= q <= 1``).

        Edge cases are pinned down (the SLO engine leans on them):
        out-of-range ``q`` (including NaN) raises ``ValueError``; an
        empty histogram returns ``None``; ``q=0.0`` and ``q=1.0`` return
        the *exact* observed min/max (both are tracked exactly, so no
        bucket estimate is needed); interior quantiles return the upper
        edge of the bucket holding the target rank, with the overflow
        bucket reporting the exact max — a quantile never under-reports.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return None
        if q == 0.0:
            return self.min
        if q == 1.0:
            return self.max
        rank = q * (self.count - 1)
        seen = 0
        for index, bucket in enumerate(self.counts):
            seen += bucket
            if bucket and seen > rank:
                if index >= len(self.edges):
                    return self.max
                return self.edges[index]
        return self.max  # pragma: no cover - rank always reached above

    @property
    def mean(self) -> float | None:
        return self.total / self.count if self.count else None

    def snapshot(self) -> dict[str, object]:
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }


class SpanNode:
    """One node of the span call tree: a named timed section."""

    __slots__ = ("name", "calls", "seconds", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.calls = 0
        self.seconds = 0.0
        self.children: dict[str, "SpanNode"] = {}

    def child(self, name: str) -> "SpanNode":
        node = self.children.get(name)
        if node is None:
            node = self.children[name] = SpanNode(name)
        return node

    def snapshot(self, timings: bool = True) -> dict[str, object]:
        """Serialisable form; ``timings=False`` drops wall-clock seconds
        (the deterministic projection the differential tests compare)."""
        doc: dict[str, object] = {"name": self.name, "calls": self.calls}
        if timings:
            doc["seconds"] = self.seconds
        if self.children:
            doc["children"] = [
                child.snapshot(timings) for child in self.children.values()
            ]
        return doc


class Telemetry:
    """Registry of named instruments plus the active span stack.

    Instruments are created on first use and looked up by name after
    that, so a re-built hot loop (the fast path's mid-run DES rejoin)
    resumes the same counters rather than resetting them.  A name is
    bound to one instrument kind for the registry's lifetime; reusing it
    as a different kind is a programming error and raises.
    """

    enabled = True

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}
        #: Root of the span tree; never reported itself.
        self.root = SpanNode("")
        self._span_stack = [self.root]

    # -- instruments -----------------------------------------------------

    def _get(self, name: str, kind: type, *args) -> object:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = kind(name, *args)
            self._instruments[name] = instrument
        elif type(instrument) is not kind:
            raise TypeError(
                f"instrument {name!r} already registered as "
                f"{type(instrument).kind}, not {kind.kind}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)  # type: ignore[return-value]

    def histogram(
        self, name: str, edges: Sequence[float] = LATENCY_EDGES
    ) -> Histogram:
        """Get-or-create; ``edges`` only applies on first creation."""
        return self._get(name, Histogram, edges)  # type: ignore[return-value]

    def instruments(self) -> Iterator[Counter | Gauge | Histogram]:
        """All instruments, in sorted-name order (stable serialisation)."""
        for name in sorted(self._instruments):
            yield self._instruments[name]

    # -- spans -----------------------------------------------------------

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Time a section; nested spans build a call tree."""
        node = self._span_stack[-1].child(name)
        self._span_stack.append(node)
        started = time.perf_counter()
        try:
            yield
        finally:
            node.seconds += time.perf_counter() - started
            node.calls += 1
            self._span_stack.pop()

    def span_snapshots(self, timings: bool = True) -> list[dict[str, object]]:
        return [
            child.snapshot(timings) for child in self.root.children.values()
        ]


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def record(self, value: float) -> None:
        pass


class _NullTelemetry(Telemetry):
    """The shared always-disabled registry (see :data:`NULL_TELEMETRY`).

    Hands out inert singleton instruments and a reusable no-op span, so
    call sites that did not hoist the ``enabled`` gate stay correct and
    allocation-free; it records nothing, ever.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self._null_counter = _NullCounter("<null>")
        self._null_gauge = _NullGauge("<null>")
        self._null_histogram = _NullHistogram("<null>", (1,))

    def counter(self, name: str) -> Counter:
        return self._null_counter

    def gauge(self, name: str) -> Gauge:
        return self._null_gauge

    def histogram(
        self, name: str, edges: Sequence[float] = LATENCY_EDGES
    ) -> Histogram:
        return self._null_histogram

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        yield


#: Process-wide disabled telemetry: components default to sharing this
#: singleton instead of allocating a throwaway registry each run.
NULL_TELEMETRY = _NullTelemetry()
