"""Declarative SLOs evaluated as multi-window burn rates.

An :class:`Objective` names *what good looks like* over instruments that
already exist — no new measurement paths:

* ``latency`` objectives bound a histogram quantile: "``q`` of
  ``serve/decision_latency_us`` samples must be <= ``threshold``".  The
  implied error budget is ``1 - q`` (a p99 objective tolerates 1% of
  samples over the threshold).
* ``ratio`` objectives bound a bad/total counter pair: "at most
  ``threshold`` of ``serve/requests`` may be ``serve/incidents``" — the
  shape deadline-miss budgets and incident-rate budgets share.

The :class:`SloEngine` is ticked once per unit of work (the admission
service ticks it per request).  Each tick snapshots every objective's
cumulative (bad, total) pair into a bounded ring and evaluates the
**burn rate** — bad-fraction divided by the budget — over a *short* and
a *long* trailing window.  A breach fires only when **both** windows
burn above ``burn_threshold``, the standard multi-window rule: the long
window keeps one transient spike from paging, the short window makes
sure the alert clears quickly once the system recovers.  Breaches latch
per objective (one :class:`Breach` per excursion, not one per tick)
until both windows drop back under the threshold.

A breach is *data*, never an exception: the caller (the admission
service) converts it into a structured ``slo-breach``
:class:`~repro.serve.model.Incident` through its normal
``_record_incident`` path, black-box trace snapshot attached.

Bucket alignment: histogram badness is counted as samples in buckets
whose upper edge lies *above* the threshold, so a threshold that is not
a bucket edge over-reports badness by at most one bucket — conservative
in the alerting direction.  Pick thresholds from the instrument's edge
set (powers of two for ``serve/decision_latency_us``) for exact counts.
"""

from __future__ import annotations

import collections
import dataclasses
import json
import pathlib
import typing

from repro.obs.instruments import Histogram, Telemetry

__all__ = [
    "Breach",
    "Objective",
    "SloEngine",
    "default_serve_objectives",
    "load_objectives",
]

#: Objective kinds: ``latency`` (histogram quantile bound) and ``ratio``
#: (bad/total counter pair bound).
OBJECTIVE_KINDS = ("latency", "ratio")


@dataclasses.dataclass(frozen=True)
class Objective:
    """One declarative service-level objective.

    ``latency`` kind: ``instrument`` names a histogram, ``q`` the
    quantile, ``threshold`` the largest acceptable value at that
    quantile; the error budget is ``1 - q``.

    ``ratio`` kind: ``instrument`` names the *bad* counter, ``total``
    the denominator counter, ``threshold`` the budget itself (largest
    acceptable bad fraction).

    ``short_window``/``long_window`` are trailing tick counts;
    ``burn_threshold`` is the burn-rate multiple both windows must
    exceed to breach (1.0 = burning budget exactly as fast as allowed).
    """

    name: str
    kind: str
    instrument: str
    threshold: float
    q: float = 0.99
    total: str | None = None
    short_window: int = 32
    long_window: int = 256
    burn_threshold: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in OBJECTIVE_KINDS:
            raise ValueError(
                f"kind must be one of {OBJECTIVE_KINDS}, got {self.kind!r}"
            )
        if self.kind == "latency" and not 0.0 < self.q < 1.0:
            raise ValueError(f"q must be in (0, 1), got {self.q}")
        if self.kind == "ratio":
            if self.total is None:
                raise ValueError(f"ratio objective {self.name!r} needs total")
            if not 0.0 <= self.threshold < 1.0:
                raise ValueError(
                    f"ratio threshold must be in [0, 1), got {self.threshold}"
                )
        if not 1 <= self.short_window < self.long_window:
            raise ValueError(
                f"need 1 <= short_window < long_window, got "
                f"{self.short_window} / {self.long_window}"
            )
        if self.burn_threshold <= 0:
            raise ValueError(
                f"burn_threshold must be > 0, got {self.burn_threshold}"
            )

    @property
    def budget(self) -> float:
        """The tolerated bad fraction (``1 - q`` for latency objectives)."""
        return 1.0 - self.q if self.kind == "latency" else self.threshold

    def to_dict(self) -> dict[str, object]:
        doc = dataclasses.asdict(self)
        return {key: value for key, value in doc.items() if value is not None}

    @classmethod
    def from_dict(cls, doc: dict) -> "Objective":
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = set(doc) - known
        if unknown:
            raise ValueError(
                f"unknown objective field(s): {sorted(unknown)}"
            )
        return cls(**doc)  # type: ignore[arg-type]


@dataclasses.dataclass(frozen=True)
class Breach:
    """One latched burn-rate excursion, ready to become an Incident."""

    objective: str
    tick: int
    burn_short: float
    burn_long: float
    burn_threshold: float

    def describe(self) -> str:
        return (
            f"SLO {self.objective}: burn rate "
            f"short={self.burn_short:.2f} long={self.burn_long:.2f} "
            f"over threshold {self.burn_threshold:.2f} "
            f"at tick {self.tick}"
        )


class _ObjectiveState:
    """Per-objective evaluation state: the snapshot ring and the latch."""

    __slots__ = ("objective", "ring", "breached")

    def __init__(self, objective: Objective) -> None:
        self.objective = objective
        #: (bad, total) cumulative snapshots, one per tick; long_window+1
        #: entries give exactly long_window trailing deltas.
        self.ring: collections.deque[tuple[int, int]] = collections.deque(
            maxlen=objective.long_window + 1
        )
        self.breached = False


def _histogram_bad(hist: Histogram, threshold: float) -> int:
    """Samples in buckets wholly or partly above ``threshold``."""
    good = 0
    for edge, count in zip(hist.edges, hist.counts):
        if edge <= threshold:
            good += count
        else:
            break
    return hist.count - good


class SloEngine:
    """Evaluate objectives over a live registry, one tick at a time."""

    def __init__(self, objectives: typing.Sequence[Objective]) -> None:
        names = [objective.name for objective in objectives]
        duplicates = {name for name in names if names.count(name) > 1}
        if duplicates:
            raise ValueError(
                f"duplicate objective name(s): {sorted(duplicates)}"
            )
        self.objectives = tuple(objectives)
        self._states = [
            _ObjectiveState(objective) for objective in self.objectives
        ]
        self.ticks = 0

    def _measure(
        self, objective: Objective, telemetry: Telemetry
    ) -> tuple[int, int]:
        """Cumulative (bad, total) for one objective, right now."""
        if objective.kind == "latency":
            hist = telemetry.histogram(objective.instrument)
            return _histogram_bad(hist, objective.threshold), hist.count
        bad = telemetry.counter(objective.instrument).value
        total = telemetry.counter(objective.total).value
        return bad, total

    @staticmethod
    def _burn(
        now: tuple[int, int], then: tuple[int, int], budget: float
    ) -> float:
        """Burn rate over one window: bad fraction / budget."""
        d_total = now[1] - then[1]
        if d_total <= 0:
            return 0.0
        bad_fraction = (now[0] - then[0]) / d_total
        if budget <= 0.0:
            # A zero budget means *any* badness is an immediate breach.
            return float("inf") if bad_fraction > 0 else 0.0
        return bad_fraction / budget

    def tick(self, telemetry: Telemetry) -> list[Breach]:
        """Snapshot every objective; returns newly latched breaches."""
        self.ticks += 1
        breaches: list[Breach] = []
        for state in self._states:
            objective = state.objective
            sample = self._measure(objective, telemetry)
            state.ring.append(sample)
            # Evaluate only once the long window is fully populated: a
            # half-filled window would alias startup transients into
            # inflated burn rates.
            if len(state.ring) <= objective.long_window:
                continue
            window = state.ring
            short_then = window[-(objective.short_window + 1)]
            long_then = window[0]
            burn_short = self._burn(sample, short_then, objective.budget)
            burn_long = self._burn(sample, long_then, objective.budget)
            over = (
                burn_short > objective.burn_threshold
                and burn_long > objective.burn_threshold
            )
            if over and not state.breached:
                state.breached = True
                breaches.append(
                    Breach(
                        objective=objective.name,
                        tick=self.ticks,
                        burn_short=burn_short,
                        burn_long=burn_long,
                        burn_threshold=objective.burn_threshold,
                    )
                )
            elif not over and state.breached:
                state.breached = False
        return breaches

    @property
    def breached(self) -> tuple[str, ...]:
        """Names of objectives currently latched as breached."""
        return tuple(
            state.objective.name
            for state in self._states
            if state.breached
        )


def default_serve_objectives(
    latency_p99_us: float = 4096.0,
    incident_budget: float = 0.01,
    short_window: int = 32,
    long_window: int = 256,
) -> list[Objective]:
    """The admission service's stock objectives.

    * decision latency: p99 of ``serve/decision_latency_us`` under
      ``latency_p99_us`` (default 4096 us — a power-of-two bucket edge,
      so badness counts are exact);
    * incident rate: at most ``incident_budget`` of requests may
      coincide with a recorded incident.
    """
    return [
        Objective(
            name="decision-latency-p99",
            kind="latency",
            instrument="serve/decision_latency_us",
            q=0.99,
            threshold=latency_p99_us,
            short_window=short_window,
            long_window=long_window,
        ),
        Objective(
            name="incident-rate",
            kind="ratio",
            instrument="serve/incidents",
            total="serve/requests",
            threshold=incident_budget,
            short_window=short_window,
            long_window=long_window,
        ),
    ]


def load_objectives(path: "str | pathlib.Path") -> list[Objective]:
    """Parse a JSON objectives file: a list of :class:`Objective` dicts."""
    with open(path, encoding="utf-8") as handle:
        doc = json.load(handle)
    if not isinstance(doc, list):
        raise ValueError(f"{path}: objectives file must be a JSON list")
    return [Objective.from_dict(entry) for entry in doc]
