"""Run manifests: one :class:`RunTelemetry` document per run, JSONL on disk.

A manifest file is JSON Lines — one self-contained document per run —
so appending runs is atomic-ish and streaming consumers never need the
whole file.  ``python -m repro.tools.obs`` renders (``summarize``) and
compares (``diff``) manifests; the experiments CLI writes them via
``--telemetry out.jsonl``.

Determinism: :meth:`RunTelemetry.content_dict` is the projection the
engine-differential suite compares — instruments, span structure, seed
and fault provenance, but *not* wall-clock span durations, wall time,
the engine label or the provenance ``source`` (those describe how the
run was driven, not what it computed).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import pathlib
import subprocess
import typing

from repro.obs.instruments import Counter, Gauge, Histogram, Telemetry

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.models import FaultPlan

__all__ = [
    "RunTelemetry",
    "fault_plan_hash",
    "git_rev",
    "read_manifests",
    "write_manifests",
]

#: Bump when the manifest document layout changes incompatibly.
MANIFEST_SCHEMA = 1


def git_rev() -> str:
    """Short git revision of the working tree, or ``"unknown"``."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=pathlib.Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except OSError:
        return "unknown"
    rev = proc.stdout.strip()
    return rev if proc.returncode == 0 and rev else "unknown"


def fault_plan_hash(faults: "FaultPlan | str | None") -> str | None:
    """Short content hash of a fault plan (canonical JSON), or ``None``."""
    if faults is None:
        return None
    canonical = faults if isinstance(faults, str) else faults.dumps()
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


@dataclasses.dataclass
class RunTelemetry:
    """Everything one run measured, as plain JSON-ready data.

    ``counters``/``gauges`` map instrument name to value; ``histograms``
    map name to the :meth:`~repro.obs.instruments.Histogram.snapshot`
    dict; ``spans`` is the span call forest
    (:meth:`~repro.obs.instruments.SpanNode.snapshot`).  The metadata
    fields carry provenance: which run (``run_id``), on what code
    (``git_rev``), driven how (``engine``, ``source``), from which seed
    and fault plan.
    """

    run_id: str
    engine: str | None = None
    #: Why the requested engine degraded or delegated (e.g. the batch
    #: kernel ran on the pure-Python backend, or fell back to the fast
    #: loop on a structurally ineligible run); ``None`` when it ran as
    #: requested.  Execution provenance, excluded from the content
    #: projection like ``engine`` itself.
    engine_fallback: str | None = None
    seed: int | None = None
    git_rev: str = "unknown"
    fault_plan: str | None = None
    source: str = "direct"
    wall_seconds: float = 0.0
    counters: dict[str, int] = dataclasses.field(default_factory=dict)
    gauges: dict[str, float] = dataclasses.field(default_factory=dict)
    histograms: dict[str, dict] = dataclasses.field(default_factory=dict)
    spans: list[dict] = dataclasses.field(default_factory=list)

    @classmethod
    def from_registry(
        cls,
        telemetry: Telemetry,
        run_id: str,
        *,
        engine: str | None = None,
        engine_fallback: str | None = None,
        seed: int | None = None,
        faults: "FaultPlan | str | None" = None,
        source: str = "direct",
        wall_seconds: float = 0.0,
    ) -> "RunTelemetry":
        """Snapshot a registry into a manifest document."""
        counters: dict[str, int] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict] = {}
        for instrument in telemetry.instruments():
            if isinstance(instrument, Counter):
                counters[instrument.name] = instrument.value
            elif isinstance(instrument, Histogram):
                histograms[instrument.name] = instrument.snapshot()
            elif isinstance(instrument, Gauge):
                gauges[instrument.name] = instrument.value
        return cls(
            run_id=run_id,
            engine=engine,
            engine_fallback=engine_fallback,
            seed=seed,
            git_rev=git_rev(),
            fault_plan=fault_plan_hash(faults),
            source=source,
            wall_seconds=wall_seconds,
            counters=counters,
            gauges=gauges,
            histograms=histograms,
            spans=telemetry.span_snapshots(),
        )

    # -- serialisation ---------------------------------------------------

    def to_dict(self) -> dict[str, object]:
        doc = dataclasses.asdict(self)
        doc["schema"] = MANIFEST_SCHEMA
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "RunTelemetry":
        fields = {field.name for field in dataclasses.fields(cls)}
        return cls(**{key: doc[key] for key in doc if key in fields})

    def to_json(self) -> str:
        """One compact JSONL line."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def content_dict(self) -> dict[str, object]:
        """The deterministic projection: what the run computed.

        Engines must agree on this byte for byte; wall-clock durations,
        the engine label and execution provenance are excluded (they
        describe *how* the run was driven).
        """

        def strip(span: dict) -> dict:
            out = {"name": span["name"], "calls": span["calls"]}
            if "children" in span:
                out["children"] = [strip(c) for c in span["children"]]
            return out

        return {
            "run_id": self.run_id,
            "seed": self.seed,
            "fault_plan": self.fault_plan,
            "counters": self.counters,
            "gauges": self.gauges,
            "histograms": self.histograms,
            "spans": [strip(span) for span in self.spans],
        }

    def content_json(self) -> str:
        return json.dumps(
            self.content_dict(), sort_keys=True, separators=(",", ":")
        )


def write_manifests(
    path: str | pathlib.Path,
    documents: typing.Iterable[RunTelemetry],
    append: bool = False,
) -> int:
    """Write documents as JSON Lines; returns the number written."""
    count = 0
    with open(path, "a" if append else "w", encoding="utf-8") as handle:
        for document in documents:
            handle.write(document.to_json() + "\n")
            count += 1
    return count


def read_manifests(path: str | pathlib.Path) -> list[RunTelemetry]:
    """Parse a JSONL manifest file; blank lines are skipped."""
    documents: list[RunTelemetry] = []
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{path}:{line_number}: not valid JSON: {error}"
                ) from None
            if not isinstance(doc, dict):
                raise ValueError(
                    f"{path}:{line_number}: manifest line is not an object"
                )
            documents.append(RunTelemetry.from_dict(doc))
    return documents
