"""The flight recorder: a bounded ring of causally linked trace events.

Telemetry instruments (:mod:`repro.obs.instruments`) answer *how much*;
the flight recorder answers *what happened, in what order, caused by
what*.  It keeps the last N structured events in a
:class:`collections.deque` ring, each carrying a monotonically assigned
id and the id of its causal parent — the innermost open span at emit
time — so a serve request's whole causal chain (request -> engine
mutation -> rollback -> decision, plus any counter-check simulation's
per-slot outcomes) is reconstructible by a parent-id walk.

Determinism contract: events carry **no wall-clock fields** — ids, kinds
and payloads are a pure function of the traced run, so two recordings of
the same request stream dump byte-identical JSONL.

The disabled state is :data:`NULL_TRACER`, a process-wide singleton
whose :meth:`~FlightRecorder.emit` and :meth:`~FlightRecorder.span` are
inert — the same hoisted-gate idiom as
:data:`~repro.obs.instruments.NULL_TELEMETRY`: hot loops check
``tracer.enabled`` once, outside the loop, and skip event construction
entirely when it is off.

The ring is a *black box* in the avionics sense: bounded memory no
matter how long the service runs, dumpable on demand
(:meth:`~FlightRecorder.dump_jsonl`) or snapshotted automatically when
an incident lands (the admission service attaches the last N events to
the structured :class:`~repro.serve.model.Incident`).
"""

from __future__ import annotations

import collections
import json
import pathlib
from collections.abc import Iterator
from contextlib import contextmanager

__all__ = [
    "FlightRecorder",
    "NULL_TRACER",
    "TraceEvent",
    "load_trace",
]

#: Default ring capacity: enough to hold a full serve request's chain
#: plus a counter-check simulation's recent slots, small enough that a
#: dump stays human-greppable.
DEFAULT_CAPACITY = 4096


class TraceEvent:
    """One recorded event: id, causal parent id, kind, payload."""

    __slots__ = ("id", "parent", "kind", "data")

    def __init__(
        self, event_id: int, parent: int | None, kind: str, data: dict
    ) -> None:
        self.id = event_id
        self.parent = parent
        self.kind = kind
        self.data = data

    def to_dict(self) -> dict[str, object]:
        doc: dict[str, object] = {"id": self.id, "kind": self.kind}
        if self.parent is not None:
            doc["parent"] = self.parent
        if self.data:
            doc["data"] = self.data
        return doc

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_dict(cls, doc: dict) -> "TraceEvent":
        return cls(
            int(doc["id"]),
            doc.get("parent"),
            str(doc["kind"]),
            dict(doc.get("data", {})),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceEvent(id={self.id}, parent={self.parent}, "
            f"kind={self.kind!r}, data={self.data!r})"
        )


class FlightRecorder:
    """Bounded ring buffer of :class:`TraceEvent` with causal parenting.

    ``capacity`` bounds memory: once full, the oldest events fall off —
    exactly the black-box property (the *last* N events before a failure
    are the ones worth keeping).  Ids keep counting past evictions, so a
    dumped window is unambiguous about what it no longer contains: a
    ``parent`` id below the window's first id points at an evicted
    ancestor.

    :meth:`span` opens a causal scope: every event emitted inside it
    (including nested spans) is parented to the span's own event.  The
    parent stack is per-recorder, not per-thread — the repro stack is
    single-threaded by design (worker *processes*, never threads).
    """

    enabled = True

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._events: collections.deque[TraceEvent] = collections.deque(
            maxlen=capacity
        )
        self._next_id = 0
        self._stack: list[int] = []
        #: Total events ever emitted (>= len(self) once the ring wraps).
        self.emitted = 0

    # -- recording -------------------------------------------------------

    def emit(self, kind: str, /, **data: object) -> int:
        """Record one event under the innermost open span; returns its id.

        The event kind is positional-only so payloads may themselves
        carry a ``kind`` key (e.g. a request's kind).
        """
        event_id = self._next_id
        self._next_id += 1
        self.emitted += 1
        parent = self._stack[-1] if self._stack else None
        self._events.append(TraceEvent(event_id, parent, kind, data))
        return event_id

    @contextmanager
    def span(self, kind: str, /, **data: object) -> Iterator[int]:
        """Emit an event and parent everything inside to it."""
        event_id = self.emit(kind, **data)
        self._stack.append(event_id)
        try:
            yield event_id
        finally:
            self._stack.pop()

    # -- inspection ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def events(self) -> list[TraceEvent]:
        """The retained window, oldest first."""
        return list(self._events)

    def last(self, n: int) -> list[TraceEvent]:
        """The newest ``n`` retained events, oldest first."""
        if n <= 0:
            return []
        window = self._events
        if n >= len(window):
            return list(window)
        return list(window)[-n:]

    def snapshot(self, last: int | None = None) -> list[dict[str, object]]:
        """JSON-ready dicts of the retained (or last ``last``) events."""
        events = self.events() if last is None else self.last(last)
        return [event.to_dict() for event in events]

    def chain(self, event_id: int) -> list[TraceEvent]:
        """The causal chain ending at ``event_id``, root first.

        Walks ``parent`` links through the retained window; stops (without
        error) when an ancestor has been evicted from the ring.
        """
        by_id = {event.id: event for event in self._events}
        chain: list[TraceEvent] = []
        current = by_id.get(event_id)
        while current is not None:
            chain.append(current)
            current = (
                by_id.get(current.parent)
                if current.parent is not None
                else None
            )
        chain.reverse()
        return chain

    # -- persistence -----------------------------------------------------

    def dump_jsonl(
        self, path: "str | pathlib.Path", last: int | None = None
    ) -> int:
        """Write the retained window as JSONL; returns events written."""
        events = self.events() if last is None else self.last(last)
        target = pathlib.Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        with open(target, "w", encoding="utf-8") as handle:
            for event in events:
                handle.write(event.to_json() + "\n")
        return len(events)


class _NullRecorder(FlightRecorder):
    """The shared always-disabled recorder (see :data:`NULL_TRACER`).

    ``emit`` records nothing and ``span`` opens no scope, so call sites
    that did not hoist the ``enabled`` gate stay correct and
    allocation-free.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__(capacity=1)

    def emit(self, kind: str, /, **data: object) -> int:
        return -1

    @contextmanager
    def span(self, kind: str, /, **data: object) -> Iterator[int]:
        yield -1


#: Process-wide disabled recorder: components default to sharing this
#: singleton instead of allocating a throwaway ring each run.
NULL_TRACER = _NullRecorder()


def load_trace(path: "str | pathlib.Path") -> list[TraceEvent]:
    """Parse a :meth:`FlightRecorder.dump_jsonl` file back into events."""
    events: list[TraceEvent] = []
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{path}:{line_number}: not valid JSON: {error}"
                ) from None
            events.append(TraceEvent.from_dict(doc))
    return events
