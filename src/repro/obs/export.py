"""Streaming metric export: Prometheus text file + JSONL delta stream.

A :class:`StreamExporter` turns a live
:class:`~repro.obs.instruments.Telemetry` registry into two artifacts a
long-running service keeps fresh *while it serves*:

* a **Prometheus text-exposition file**, atomically rewritten on every
  export (``mkstemp`` + ``os.replace``, the same idiom the xi store
  uses), so a node-exporter-style textfile collector — or ``python -m
  repro.tools.obs top`` — always reads a complete, consistent snapshot;
* a **JSONL delta stream**, appended one record per export tick,
  carrying only the instruments that changed since the previous tick —
  ``python -m repro.tools.obs tail`` follows it like ``tail -f``.

Determinism: export records carry the export *tick* (a simple counter),
never wall-clock timestamps, so a replayed request stream produces a
byte-identical delta stream — consistent with the decision-log
contract.  Prometheus scrapers stamp samples at scrape time anyway.

Readers of live JSONL files must tolerate a truncated final line (the
writer may be mid-append when the reader polls); :func:`iter_jsonl_tail`
is the shared tolerant reader ``obs tail``, the incident replayer and
tests all use.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
import typing

from repro.obs.instruments import Counter, Gauge, Histogram, Telemetry

__all__ = [
    "StreamExporter",
    "iter_jsonl_tail",
    "parse_prometheus",
    "prometheus_name",
    "render_prometheus",
    "write_atomic",
]

#: Quantiles the delta stream summarises changed histograms with.
_STREAM_QUANTILES: tuple[tuple[str, float], ...] = (
    ("p50", 0.50),
    ("p99", 0.99),
)


def prometheus_name(name: str, prefix: str = "repro_") -> str:
    """Sanitise an instrument name into a Prometheus metric name."""
    sanitised = "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )
    if sanitised and sanitised[0].isdigit():
        sanitised = "_" + sanitised
    return prefix + sanitised


def render_prometheus(telemetry: Telemetry) -> str:
    """The registry as Prometheus text exposition format (one snapshot).

    Counters render as ``counter``, gauges as ``gauge``, histograms as
    the standard cumulative ``_bucket{le=...}`` / ``_sum`` / ``_count``
    triple with a closing ``le="+Inf"`` bucket.
    """
    lines: list[str] = []
    for instrument in telemetry.instruments():
        metric = prometheus_name(instrument.name)
        if isinstance(instrument, Counter):
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {instrument.value}")
        elif isinstance(instrument, Gauge):
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {instrument.value}")
        elif isinstance(instrument, Histogram):
            lines.append(f"# TYPE {metric} histogram")
            cumulative = 0
            for edge, count in zip(instrument.edges, instrument.counts):
                cumulative += count
                lines.append(
                    f'{metric}_bucket{{le="{edge}"}} {cumulative}'
                )
            lines.append(
                f'{metric}_bucket{{le="+Inf"}} {instrument.count}'
            )
            lines.append(f"{metric}_sum {instrument.total}")
            lines.append(f"{metric}_count {instrument.count}")
    return "\n".join(lines) + ("\n" if lines else "")


def parse_prometheus(text: str) -> dict[str, dict]:
    """Parse exposition text back into ``{metric: {...}}`` (for ``obs top``).

    Counters/gauges map to ``{"type", "value"}``; histograms to
    ``{"type", "buckets": [(le, cumulative), ...], "sum", "count"}``.
    Unknown lines are skipped — the parser reads what
    :func:`render_prometheus` writes, not the whole exposition grammar.
    """
    metrics: dict[str, dict] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            parts = rest.split()
            if len(parts) == 2:
                metrics[parts[0]] = {"type": parts[1]}
                if parts[1] == "histogram":
                    metrics[parts[0]]["buckets"] = []
            continue
        if line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        if not name:
            continue
        if '_bucket{le="' in name:
            base, _, tail = name.partition('_bucket{le="')
            le = tail.rstrip('"}')
            entry = metrics.setdefault(
                base, {"type": "histogram", "buckets": []}
            )
            entry.setdefault("buckets", []).append((le, float(value)))
        elif name.endswith("_sum") and name[:-4] in metrics:
            metrics[name[:-4]]["sum"] = float(value)
        elif name.endswith("_count") and name[:-6] in metrics:
            metrics[name[:-6]]["count"] = float(value)
        else:
            entry = metrics.setdefault(name, {"type": "untyped"})
            entry["value"] = float(value)
    return metrics


def write_atomic(path: "str | pathlib.Path", text: str) -> None:
    """Atomically replace ``path`` with ``text`` (mkstemp + os.replace)."""
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=target.parent, prefix=target.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def iter_jsonl_tail(
    path: "str | pathlib.Path",
) -> typing.Iterator[dict]:
    """Yield JSON objects from a live JSONL file, tolerating a torn tail.

    A truncated (unparsable) **final** line is silently skipped — the
    writer may be mid-append when we read.  An unparsable line anywhere
    *before* the end is real corruption and raises ``ValueError``.
    Missing files yield nothing (the stream just has not started yet).
    """
    try:
        handle = open(path, encoding="utf-8")
    except OSError:
        return
    with handle:
        pending: tuple[int, str] | None = None
        for line_number, line in enumerate(handle, start=1):
            if pending is not None:
                number, text = pending
                raise ValueError(
                    f"{path}:{number}: corrupt JSONL line: {text[:80]!r}"
                )
            stripped = line.strip()
            if not stripped:
                continue
            try:
                doc = json.loads(stripped)
            except json.JSONDecodeError:
                # Defer judgement: only fatal if another line follows.
                pending = (line_number, stripped)
                continue
            if isinstance(doc, dict):
                yield doc


class StreamExporter:
    """Periodic snapshot-delta export of one telemetry registry.

    ``tick()`` is the cheap per-request hook: it counts calls and runs a
    full :meth:`export` every ``every`` ticks (``every=1`` exports each
    tick).  Each export atomically rewrites the Prometheus file and
    appends one delta record — ``{"tick": N, "counters": {name: [delta,
    total]}, "gauges": {name: value}, "histograms": {name: {"count",
    "delta", quantiles...}}}`` — containing only instruments that
    changed since the previous export, so an idle service appends
    nothing.
    """

    def __init__(
        self,
        telemetry: Telemetry,
        prom_path: "str | pathlib.Path",
        stream_path: "str | pathlib.Path",
        every: int = 1,
    ) -> None:
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.telemetry = telemetry
        self.prom_path = pathlib.Path(prom_path)
        self.stream_path = pathlib.Path(stream_path)
        self.every = every
        self.ticks = 0
        self.exports = 0
        self._last_counters: dict[str, int] = {}
        self._last_gauges: dict[str, float] = {}
        self._last_hist_counts: dict[str, int] = {}

    def tick(self) -> bool:
        """Count one unit of work; export on cadence.  True if exported."""
        self.ticks += 1
        if self.ticks % self.every:
            return False
        self.export()
        return True

    def _delta_record(self) -> dict[str, object]:
        counters: dict[str, list] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict] = {}
        for instrument in self.telemetry.instruments():
            name = instrument.name
            if isinstance(instrument, Counter):
                previous = self._last_counters.get(name, 0)
                if instrument.value != previous:
                    counters[name] = [
                        instrument.value - previous, instrument.value
                    ]
                    self._last_counters[name] = instrument.value
            elif isinstance(instrument, Gauge):
                previous = self._last_gauges.get(name)
                if instrument.value != previous:
                    gauges[name] = instrument.value
                    self._last_gauges[name] = instrument.value
            elif isinstance(instrument, Histogram):
                previous = self._last_hist_counts.get(name, 0)
                if instrument.count != previous:
                    summary: dict[str, object] = {
                        "count": instrument.count,
                        "delta": instrument.count - previous,
                    }
                    for label, q in _STREAM_QUANTILES:
                        summary[label] = instrument.quantile(q)
                    histograms[name] = summary
                    self._last_hist_counts[name] = instrument.count
        record: dict[str, object] = {"tick": self.ticks}
        if counters:
            record["counters"] = counters
        if gauges:
            record["gauges"] = gauges
        if histograms:
            record["histograms"] = histograms
        return record

    def export(self) -> dict[str, object]:
        """One export: rewrite the Prometheus file, append the delta."""
        self.exports += 1
        write_atomic(self.prom_path, render_prometheus(self.telemetry))
        record = self._delta_record()
        with open(self.stream_path, "a", encoding="utf-8") as handle:
            handle.write(
                json.dumps(record, sort_keys=True, separators=(",", ":"))
                + "\n"
            )
            handle.flush()
        return record
