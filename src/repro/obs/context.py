"""Scoped ambient telemetry, mirroring :func:`repro.faults.context.use_fault_plan`.

The runtime executor collects one telemetry document per spec execution,
but an experiment runner may build many simulations deep inside its own
call tree.  Threading a registry through every runner signature would be
invasive, so the executor scopes it here and
:class:`~repro.net.network.NetworkSimulation` picks it up at ``run()``
time when none was passed explicitly — the same pattern the engine
selector and the fault-plan context use.

Implemented on the shared :class:`repro.context.ScopedValue` substrate;
the telemetry-specific semantics are that ``None`` coerces to
:data:`NULL_TELEMETRY` (shadowing any outer scope), so nested code can
explicitly run uninstrumented and :func:`current_telemetry` never
returns ``None``.
"""

from __future__ import annotations

from repro.context import ScopedValue
from repro.obs.instruments import NULL_TELEMETRY, Telemetry
from repro.obs.tracer import NULL_TRACER, FlightRecorder

__all__ = [
    "current_telemetry",
    "current_tracer",
    "use_telemetry",
    "use_tracer",
]

_SCOPE: ScopedValue[Telemetry] = ScopedValue(
    "telemetry",
    default=lambda: NULL_TELEMETRY,
    coerce=lambda value: NULL_TELEMETRY if value is None else value,
)

#: The innermost scoped registry (:data:`NULL_TELEMETRY` outside any).
current_telemetry = _SCOPE.current

#: Scope a registry as ambient for the dynamic extent; ``None`` scopes
#: :data:`NULL_TELEMETRY` (shadowing any outer scope).
use_telemetry = _SCOPE.using

_TRACER_SCOPE: ScopedValue[FlightRecorder] = ScopedValue(
    "tracer",
    default=lambda: NULL_TRACER,
    coerce=lambda value: NULL_TRACER if value is None else value,
)

#: The innermost scoped flight recorder (:data:`NULL_TRACER` outside any).
current_tracer = _TRACER_SCOPE.current

#: Scope a flight recorder as ambient for the dynamic extent; ``None``
#: scopes :data:`NULL_TRACER` (shadowing any outer scope).  The admission
#: service scopes its recorder around counter-check executions so the
#: SERVE-CHECK simulation's round driver parents its slot events into
#: the serve request's causal tree.
use_tracer = _TRACER_SCOPE.using
