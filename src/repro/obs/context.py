"""Scoped ambient telemetry, mirroring :func:`repro.faults.context.use_fault_plan`.

The runtime executor collects one telemetry document per spec execution,
but an experiment runner may build many simulations deep inside its own
call tree.  Threading a registry through every runner signature would be
invasive, so the executor scopes it here and
:class:`~repro.net.network.NetworkSimulation` picks it up at ``run()``
time when none was passed explicitly — the same pattern the engine
selector and the fault-plan context use.
"""

from __future__ import annotations

import contextlib
import typing

from repro.obs.instruments import NULL_TELEMETRY, Telemetry

__all__ = ["current_telemetry", "use_telemetry"]

_ACTIVE: list[Telemetry] = [NULL_TELEMETRY]


def current_telemetry() -> Telemetry:
    """The innermost scoped registry (:data:`NULL_TELEMETRY` outside any)."""
    return _ACTIVE[-1]


@contextlib.contextmanager
def use_telemetry(telemetry: Telemetry | None) -> typing.Iterator[None]:
    """Scope ``telemetry`` as ambient for the dynamic extent.

    ``None`` scopes :data:`NULL_TELEMETRY` (shadowing any outer scope),
    so nested code can explicitly run uninstrumented.
    """
    _ACTIVE.append(telemetry if telemetry is not None else NULL_TELEMETRY)
    try:
        yield
    finally:
        _ACTIVE.pop()
