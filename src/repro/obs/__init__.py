"""Unified telemetry: typed instruments, run manifests, ambient scoping.

One registry (:class:`~repro.obs.instruments.Telemetry`) collects every
number a run produces — counters, gauges, fixed-bucket histograms and
span timers — and one document (:class:`~repro.obs.manifest.RunTelemetry`)
carries them out of the process as a JSONL manifest the
``python -m repro.tools.obs`` tooling can render and diff.

The disabled state is the shared :data:`~repro.obs.instruments.NULL_TELEMETRY`
singleton, following the ``NULL_TRACE`` hoisted-gate pattern: hot call
sites check ``telemetry.enabled`` once per run and skip all instrument
work when it is off, so the slot-loop fast path stays allocation-free.
"""

from repro.obs.context import current_telemetry, use_telemetry
from repro.obs.instruments import (
    NULL_TELEMETRY,
    Counter,
    Gauge,
    Histogram,
    Telemetry,
)
from repro.obs.manifest import (
    RunTelemetry,
    git_rev,
    read_manifests,
    write_manifests,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "NULL_TELEMETRY",
    "RunTelemetry",
    "Telemetry",
    "current_telemetry",
    "git_rev",
    "read_manifests",
    "use_telemetry",
    "write_manifests",
]
