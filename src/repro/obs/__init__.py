"""Unified telemetry: typed instruments, run manifests, ambient scoping.

One registry (:class:`~repro.obs.instruments.Telemetry`) collects every
number a run produces — counters, gauges, fixed-bucket histograms and
span timers — and one document (:class:`~repro.obs.manifest.RunTelemetry`)
carries them out of the process as a JSONL manifest the
``python -m repro.tools.obs`` tooling can render and diff.

The disabled state is the shared :data:`~repro.obs.instruments.NULL_TELEMETRY`
singleton, following the ``NULL_TRACE`` hoisted-gate pattern: hot call
sites check ``telemetry.enabled`` once per run and skip all instrument
work when it is off, so the slot-loop fast path stays allocation-free.

The *v2 ops plane* layers three live views on the same substrate: the
flight recorder (:mod:`repro.obs.tracer` — a bounded ring of causally
linked trace events, disabled state :data:`~repro.obs.tracer.NULL_TRACER`),
the streaming exporter (:mod:`repro.obs.export` — Prometheus text file +
JSONL delta stream, rewritten/appended while a service runs), and the
SLO engine (:mod:`repro.obs.slo` — declarative objectives evaluated as
multi-window burn rates over existing instruments).
"""

from repro.obs.context import (
    current_telemetry,
    current_tracer,
    use_telemetry,
    use_tracer,
)
from repro.obs.export import StreamExporter, iter_jsonl_tail
from repro.obs.instruments import (
    NULL_TELEMETRY,
    Counter,
    Gauge,
    Histogram,
    Telemetry,
)
from repro.obs.manifest import (
    RunTelemetry,
    git_rev,
    read_manifests,
    write_manifests,
)
from repro.obs.slo import Breach, Objective, SloEngine
from repro.obs.tracer import NULL_TRACER, FlightRecorder, TraceEvent

__all__ = [
    "Breach",
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "NULL_TELEMETRY",
    "NULL_TRACER",
    "Objective",
    "RunTelemetry",
    "SloEngine",
    "StreamExporter",
    "Telemetry",
    "TraceEvent",
    "current_telemetry",
    "current_tracer",
    "git_rev",
    "iter_jsonl_tail",
    "read_manifests",
    "use_telemetry",
    "use_tracer",
    "write_manifests",
]
