"""Baseline: slotted ALOHA (Roberts 1972), the oldest contention MAC.

The historical reference point every collision-resolution analysis cites:
a station transmits a fresh frame in the very next slot after it reaches
the queue head; after a collision it becomes *backlogged* and retransmits
in each subsequent slot with fixed probability ``p`` until it gets
through.  Peak throughput is the textbook ``1/e`` and the access-latency
tail is geometric — there is no deadline guarantee of any kind, which is
exactly why the paper replaces probabilistic retry with deterministic
collision resolution.

The retry stream is seeded per station, so runs are deterministic and
(like CSMA-CD/BEB) the protocol state is *private*: ``public_state``
returns ``()`` and the lockstep consistency check does not apply.
"""

from __future__ import annotations

import random

from repro.model.message import MessageInstance
from repro.protocols.base import ChannelState, MACProtocol, SlotObservation

__all__ = ["SlottedAlohaProtocol", "DEFAULT_TRANSMIT_PROBABILITY"]

DEFAULT_TRANSMIT_PROBABILITY = 0.25


class SlottedAlohaProtocol(MACProtocol):
    """Slotted ALOHA with a fixed, seeded retransmission probability."""

    def __init__(
        self,
        transmit_probability: float = DEFAULT_TRANSMIT_PROBABILITY,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if not 0.0 < transmit_probability <= 1.0:
            raise ValueError(
                "transmit_probability must be in (0, 1], got "
                f"{transmit_probability}"
            )
        self.transmit_probability = transmit_probability
        self._rng = random.Random(seed)
        self._backlogged = False
        self._offered: MessageInstance | None = None

    def offer(self, now: int) -> MessageInstance | None:
        message = self.bound_station.queue.peek()
        if message is None:
            self._offered = None
            return None
        # Fresh head-of-queue frames go out immediately; a backlogged one
        # retries with probability p.  The draw happens at most once per
        # round (offer is called exactly once per round under every
        # engine), so the retry stream is a pure function of the run.
        if self._backlogged and self._rng.random() >= self.transmit_probability:
            self._offered = None
            return None
        self._offered = message
        return message

    def suppress_offer(self) -> None:
        self._offered = None

    def observe(self, observation: SlotObservation) -> None:
        station = self.bound_station
        offered = self._offered
        self._offered = None
        if observation.state is ChannelState.SUCCESS:
            frame = observation.frame
            assert frame is not None
            if frame.station_id == station.station_id:
                station.complete(
                    frame.message, observation.end, observation.start
                )
                self._backlogged = False
            return
        if observation.state is ChannelState.COLLISION and offered is not None:
            self._backlogged = True

    def public_state(self) -> tuple[object, ...]:
        # Retry state is private by design (random per station).
        return ()
