"""Local algorithm LA: the per-source EDF waiting queue (section 3.2).

Messages received by a source are stored in a waiting queue Q serviced in
Earliest-Deadline-First order; ``msg*`` denotes the message ranked first.
Ties on the absolute deadline break by arrival time then sequence number,
which makes the order total and deterministic (and matches
:class:`~repro.model.message.MessageInstance`'s ordering).

LA runs "in parallel" with the protocol: arrivals may re-rank the queue at
any time, so ``peek`` must always be consulted fresh — protocols must not
cache ``msg*`` across slots.
"""

from __future__ import annotations

import heapq

from repro.model.message import MessageInstance

__all__ = ["EDFQueue"]


class EDFQueue:
    """A priority queue of message instances in EDF order.

    Removal of arbitrary instances (needed when the MAC completes a
    transmission that may no longer be ``msg*``) uses lazy deletion: the
    live set is tracked by sequence number and dead heap entries are purged
    when they surface at the top.
    """

    def __init__(self) -> None:
        self._heap: list[MessageInstance] = []
        self._live_seqs: set[int] = set()

    def __len__(self) -> int:
        return len(self._live_seqs)

    def __bool__(self) -> bool:
        return bool(self._live_seqs)

    def push(self, message: MessageInstance) -> None:
        """Insert an arrival (LA keeps the EDF invariant)."""
        if message.seq in self._live_seqs:
            raise KeyError(f"message seq={message.seq} already queued")
        heapq.heappush(self._heap, message)
        self._live_seqs.add(message.seq)

    def peek(self) -> MessageInstance | None:
        """``msg*``: the EDF-first message, or None when Q is empty."""
        self._compact()
        return self._heap[0] if self._heap else None

    def pop(self) -> MessageInstance:
        """Remove and return ``msg*``."""
        self._compact()
        if not self._heap:
            raise IndexError("pop from empty EDF queue")
        message = heapq.heappop(self._heap)
        self._live_seqs.discard(message.seq)
        return message

    def remove(self, message: MessageInstance) -> None:
        """Remove a specific live instance (lazy deletion)."""
        if message.seq not in self._live_seqs:
            raise KeyError(f"message seq={message.seq} is not queued")
        self._live_seqs.discard(message.seq)
        self._compact()

    def _compact(self) -> None:
        while self._heap and self._heap[0].seq not in self._live_seqs:
            heapq.heappop(self._heap)

    def snapshot(self) -> list[MessageInstance]:
        """All live messages in EDF order (for metrics and assertions)."""
        return sorted(
            message
            for message in self._heap
            if message.seq in self._live_seqs
        )
