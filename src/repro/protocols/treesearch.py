"""The distributed m-ary splitting search automaton (``m-ts``, section 3.2).

Every station tracks the *same* depth-first search agenda over a balanced
m-ary tree, updating it from the public ternary channel feedback only —
this is what makes the search distributed yet consistent.  The automaton is
deliberately protocol-agnostic: CSMA/DCR runs it over the static tree,
CSMA/DDCR over the time tree with a nested static-tree instance.

Discipline (matching :func:`repro.core.search_cost.simulate_search` exactly,
which the integration tests assert):

* the agenda is a stack of leaf intervals; the top is probed next;
* the triggering collision counts as the root probe, so a fresh search
  starts with the root's m children on the stack (leftmost on top);
* COLLISION on the probed interval: replace it by its m children;
* SILENCE or SUCCESS: the interval is done;
* the *frontier* is the lowest leaf not yet covered by a completed probe —
  because the DFS is left-to-right, the agenda always covers exactly
  ``[frontier, leaves)``; late joiners may only target indices >= frontier
  (the ``f* + 1`` clamp of section 3.2).
"""

from __future__ import annotations

import dataclasses

from repro.core.trees import BalancedTree, LeafInterval
from repro.protocols.base import ChannelState

__all__ = ["SplittingSearch"]


@dataclasses.dataclass(slots=True)
class SplittingSearch:
    """One in-progress m-ary splitting search (per-station replica).

    The replica's entire state is a pure function of the feedback sequence,
    so identically-configured stations stay in lockstep; ``state_key()``
    feeds the network runner's consistency assertions.

    ``slots=True``: under CSMA/DDCR every station starts a fresh search
    roughly once per slot, so replica construction sits on the simulator's
    hot path.
    """

    tree: BalancedTree
    agenda: list[LeafInterval] = dataclasses.field(default_factory=list)
    frontier: int = 0
    probes: int = 0
    wasted_slots: int = 0
    successes: int = 0
    # The root interval, snapshotted once: ``tree.root`` goes through an
    # interning cache whose lookup is too slow for the per-slot restart.
    _root: LeafInterval = dataclasses.field(
        init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        self._root = self.tree.root

    @classmethod
    def after_root_collision(
        cls,
        tree: BalancedTree,
        occupied_children: frozenset[int] | None = None,
    ) -> "SplittingSearch":
        """Start a search whose root probe was the triggering collision.

        On a non-destructive bus the triggering collision already revealed
        which root children are occupied; pass them to prune the rest.
        """
        search = cls(tree=tree)
        children = tree.root.children(tree.m)
        if occupied_children is not None:
            children = tuple(
                child
                for ordinal, child in enumerate(children)
                if ordinal in occupied_children
            )
        search.agenda = list(reversed(children))
        return search

    @classmethod
    def fresh(cls, tree: BalancedTree) -> "SplittingSearch":
        """Start a search that must still probe the root itself."""
        search = cls(tree=tree)
        search.agenda = [tree.root]
        return search

    def restart_fresh(self) -> None:
        """Reset in place to the state :meth:`fresh` constructs.

        The idle protocol finishes and restarts one search per slot per
        station; reusing the finished replica keeps that steady state
        allocation-free.
        """
        self.agenda.clear()
        self.agenda.append(self._root)
        self.frontier = 0
        self.probes = 0
        self.wasted_slots = 0
        self.successes = 0

    @property
    def done(self) -> bool:
        return not self.agenda

    @property
    def current(self) -> LeafInterval:
        """The interval being probed in the current slot."""
        if not self.agenda:
            raise RuntimeError("search already complete")
        return self.agenda[-1]

    def covers(self, index: int) -> bool:
        """Is ``index`` probed in the current slot?"""
        return not self.done and index in self.current

    def feed(
        self,
        state: ChannelState,
        occupied_children: frozenset[int] | None = None,
    ) -> LeafInterval:
        """Digest the channel state of the probe slot; returns the probed node.

        Cost accounting matches the paper: SILENCE and COLLISION slots are
        wasted (count toward xi), SUCCESS slots are not.  On a collision,
        ``occupied_children`` (from a non-destructive bus) prunes the
        children that are known empty — they are never probed.
        """
        node = self.agenda.pop()
        self.probes += 1
        if state is ChannelState.COLLISION:
            self.wasted_slots += 1
            if node.is_leaf():
                raise RuntimeError(
                    f"collision on leaf {node} must be resolved by the "
                    "caller (nested search), not fed back here"
                )
            children = node.children(self.tree.m)
            if occupied_children is not None:
                children = tuple(
                    child
                    for ordinal, child in enumerate(children)
                    if ordinal in occupied_children
                )
            self.agenda.extend(reversed(children))
        elif state is ChannelState.SILENCE:
            self.wasted_slots += 1
            self.frontier = node.hi
        else:  # SUCCESS
            self.successes += 1
            self.frontier = node.hi
        return node

    def retry_current(self) -> LeafInterval:
        """Count a noise-corrupted probe and leave the node on the agenda.

        Used when a collision is observed on a probe that *cannot* really
        collide (a static-tree leaf: its index has a unique owner).  All
        replicas can commonly attribute it to channel noise and re-probe
        the same node next slot.
        """
        self.probes += 1
        self.wasted_slots += 1
        return self.current

    def begin_leaf_resolution(self) -> LeafInterval:
        """Digest a collision on the current *leaf*: pop it for nesting.

        The collision slot is NOT added to this search's ``wasted_slots``:
        per section 3.2 it doubles as the nested static tree's root probe,
        so the nested search's record owns it (keeping each slot accounted
        exactly once, and each record directly comparable to its xi term in
        the feasibility conditions).

        The frontier is deliberately left at the leaf — the leaf only counts
        as searched once the nested search resolves it, so late joiners
        clamped to the frontier still map onto this leaf's class.  Callers
        must invoke :meth:`complete_leaf` when the nested search is over.
        """
        node = self.agenda.pop()
        if not node.is_leaf():
            raise RuntimeError(f"{node} is not a leaf")
        self.probes += 1
        return node

    def complete_leaf(self, leaf: LeafInterval) -> None:
        """Mark a leaf searched after its nested resolution completed."""
        if leaf.hi < self.frontier:
            raise RuntimeError(f"{leaf} is already behind the frontier")
        self.frontier = leaf.hi

    def state_key(self) -> tuple[object, ...]:
        """Hashable snapshot for lockstep-consistency assertions."""
        return (
            tuple((n.lo, n.hi) for n in self.agenda),
            self.frontier,
            self.probes,
            self.wasted_slots,
            self.successes,
        )
