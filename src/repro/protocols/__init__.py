"""MAC protocols over the ternary-feedback broadcast channel.

:class:`~repro.protocols.ddcr.DDCRProtocol` is the paper's contribution;
:class:`~repro.protocols.csma_cd.CSMACDProtocol` (802.3 BEB),
:class:`~repro.protocols.dcr.DCRProtocol` (802.3D static tree) and
:class:`~repro.protocols.tdma.TDMAProtocol` are the baselines the PROTO
bench compares against.
"""

from repro.protocols.base import ChannelState, MACProtocol, SlotObservation
from repro.protocols.csma_cd import CSMACDProtocol
from repro.protocols.dcr import DCRMode, DCRProtocol
from repro.protocols.ddcr import DDCRConfig, DDCRMode, DDCRProtocol
from repro.protocols.edf_queue import EDFQueue
from repro.protocols.slotted_aloha import SlottedAlohaProtocol
from repro.protocols.tdma import TDMAProtocol
from repro.protocols.treesearch import SplittingSearch

__all__ = [
    "ChannelState",
    "MACProtocol",
    "SlotObservation",
    "CSMACDProtocol",
    "DCRMode",
    "DCRProtocol",
    "DDCRConfig",
    "DDCRMode",
    "DDCRProtocol",
    "EDFQueue",
    "SlottedAlohaProtocol",
    "TDMAProtocol",
    "SplittingSearch",
]
