"""Baseline: CSMA-CD with truncated binary exponential backoff (IEEE 802.3).

The probabilistic protocol the paper positions CSMA/DDCR against.  In the
slotted model: a station with a pending message transmits as soon as its
backoff counter is zero; after its n-th consecutive collision on the same
message it draws a uniform backoff in ``[0, 2**min(n, 10) - 1]`` slots; after
16 attempts the frame is discarded (counted as a loss by the metrics layer).
The backoff counter decrements once per observed channel round in which the
station does not transmit, which is the standard slotted idealisation.

No real-time guarantee exists: under the HRTDM adversary the tail of the
access latency is unbounded — exactly the behaviour the PROTO bench exhibits
against DDCR.
"""

from __future__ import annotations

import random

from repro.model.message import MessageInstance
from repro.protocols.base import ChannelState, MACProtocol, SlotObservation

__all__ = ["CSMACDProtocol", "MAX_ATTEMPTS", "MAX_BACKOFF_EXPONENT"]

MAX_ATTEMPTS = 16
MAX_BACKOFF_EXPONENT = 10


class CSMACDProtocol(MACProtocol):
    """802.3-style CSMA-CD with truncated BEB (seeded, deterministic)."""

    def __init__(self, seed: int = 0) -> None:
        super().__init__()
        self._rng = random.Random(seed)
        self._backoff = 0
        self._attempts = 0
        self._offered: MessageInstance | None = None

    def offer(self, now: int) -> MessageInstance | None:
        if self._backoff > 0:
            return None
        message = self.bound_station.queue.peek()
        self._offered = message
        return message

    def suppress_offer(self) -> None:
        self._offered = None

    def observe(self, observation: SlotObservation) -> None:
        station = self.bound_station
        offered = self._offered
        self._offered = None
        if observation.state is ChannelState.SUCCESS:
            frame = observation.frame
            assert frame is not None
            if frame.station_id == station.station_id:
                station.complete(frame.message, observation.end, observation.start)
                self._attempts = 0
                self._backoff = 0
            elif self._backoff > 0:
                self._backoff -= 1
            return
        if observation.state is ChannelState.COLLISION and offered is not None:
            self._attempts += 1
            if self._attempts >= MAX_ATTEMPTS:
                station.drop(offered, observation.end)
                self._attempts = 0
                self._backoff = 0
                return
            exponent = min(self._attempts, MAX_BACKOFF_EXPONENT)
            self._backoff = self._rng.randint(0, 2**exponent - 1)
            return
        if self._backoff > 0:
            self._backoff -= 1

    def public_state(self) -> tuple[object, ...]:
        # Backoff state is private by design (random per station).
        return ()
