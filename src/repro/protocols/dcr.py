"""Baseline: CSMA/DCR — deterministic collision resolution on a static tree.

The 802.3D protocol ([25] in the paper; Le Lann & Rolin, 1984) that the
authors transferred to industry in the 80s: CSMA-CD while the channel is
collision-free; on a collision, every station runs a balanced m-ary
splitting search over a static tree of source indices.  Deterministic and
bounded, but *deadline-blind*: the tree order, not EDF, decides who
transmits first, so urgent messages can be starved behind low-index
traffic — the gap CSMA/DDCR's time tree closes (section 3.2).

Mode machine (common knowledge, driven by public feedback only):

* FREE: CSMA-CD — any backlogged station offers its EDF-first message;
  a collision starts a search (the collision is the root probe);
* SEARCH: the station offers only when the probed interval contains its
  active static index and it has a backlogged message.  A station that
  transmits successfully during the search advances to its next static
  index (ranked order) and may transmit again later in the same search.
"""

from __future__ import annotations

import enum

from repro.core.trees import BalancedTree
from repro.model.message import MessageInstance
from repro.protocols.base import ChannelState, MACProtocol, SlotObservation
from repro.protocols.treesearch import SplittingSearch

__all__ = ["DCRProtocol", "DCRMode"]


class DCRMode(enum.Enum):
    FREE = "free"
    SEARCH = "search"


class DCRProtocol(MACProtocol):
    """CSMA/DCR (802.3D): static-tree deterministic collision resolution."""

    def __init__(self, tree: BalancedTree) -> None:
        super().__init__()
        self.tree = tree
        self.mode = DCRMode.FREE
        self.search: SplittingSearch | None = None
        self._index_cursor = 0
        self.searches_completed = 0
        self.search_slot_costs: list[int] = []

    def on_attach(self) -> None:
        for index in self.bound_station.static_indices:
            if index >= self.tree.leaves:
                raise ValueError(
                    f"static index {index} exceeds tree leaves "
                    f"{self.tree.leaves}"
                )

    # -- helpers -----------------------------------------------------------

    def _active_index(self) -> int | None:
        """The static index this station currently competes with."""
        indices = self.bound_station.static_indices
        if self._index_cursor >= len(indices):
            return None
        return indices[self._index_cursor]

    # -- MAC interface -----------------------------------------------------

    def offer(self, now: int) -> MessageInstance | None:
        message = self.bound_station.queue.peek()
        if message is None:
            return None
        if self.mode is DCRMode.FREE:
            return message
        assert self.search is not None
        index = self._active_index()
        if index is None or not self.search.covers(index):
            return None
        return message

    def observe(self, observation: SlotObservation) -> None:
        station = self.bound_station
        if observation.state is ChannelState.SUCCESS:
            frame = observation.frame
            assert frame is not None
            if frame.station_id == station.station_id:
                station.complete(frame.message, observation.end, observation.start)
        if self.mode is DCRMode.FREE:
            if observation.state is ChannelState.COLLISION:
                self.search = SplittingSearch.after_root_collision(self.tree)
                self.mode = DCRMode.SEARCH
                self._index_cursor = 0
            return
        # SEARCH mode.
        assert self.search is not None
        was_mine = (
            observation.state is ChannelState.SUCCESS
            and observation.frame is not None
            and observation.frame.station_id == station.station_id
        )
        if (
            observation.state is ChannelState.COLLISION
            and self.search.current.is_leaf()
        ):
            # Unique index ownership: a leaf collision is channel noise.
            self.search.retry_current()
            return
        self.search.feed(observation.state)
        if was_mine:
            # Ranked order: next transmission uses the next static index.
            self._index_cursor += 1
        if self.search.done:
            self.searches_completed += 1
            # Root collision slot + in-search wasted slots.
            self.search_slot_costs.append(1 + self.search.wasted_slots)
            self.search = None
            self.mode = DCRMode.FREE
            self._index_cursor = 0

    def public_state(self) -> tuple[object, ...]:
        key: tuple[object, ...] = (self.mode.value,)
        if self.search is not None:
            key += self.search.state_key()
        return key
