"""MAC protocol interface and the slotted channel contract.

The broadcast channel (:mod:`repro.net.channel`) advances in rounds.  In
each round it

1. asks every attached MAC whether it transmits in this slot
   (:meth:`MACProtocol.offer`), then
2. announces the resulting channel state to every MAC
   (:meth:`MACProtocol.observe`) — ``SILENCE``, ``SUCCESS`` (with the frame,
   which every station can decode) or ``COLLISION`` (destructive: nothing is
   learned beyond the fact of the collision).

This ternary feedback is exactly the information model of CSMA-CD and of
the tree protocols of section 3.2; every protocol in
:mod:`repro.protocols` is a deterministic (or seeded) automaton over it.

The offer/observe contract is *engine-independent*: whether the channel's
round loop is driven as a DES generator process or by the slot-loop fast
path (see :mod:`repro.net.engine`), a MAC sees the identical call sequence
— one ``offer`` then one ``observe`` per slot, at the same simulated times
with the same observations.  Protocols therefore never interact with the
event queue and must not assume one exists.
"""

from __future__ import annotations

import abc
import dataclasses
import enum
import typing

from repro.model.message import MessageInstance

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.frames import Frame
    from repro.net.station import Station

__all__ = ["ChannelState", "SlotObservation", "MACProtocol"]


class ChannelState(enum.Enum):
    """The three observable channel states of section 3.2 (``chstate``)."""

    SILENCE = "silence"
    SUCCESS = "success"
    COLLISION = "collision"


@dataclasses.dataclass(frozen=True, slots=True)
class SlotObservation:
    """What every station learns at the end of one channel round.

    ``start``/``duration`` are in bit-times; ``frame`` is set only on
    SUCCESS (broadcast medium: everyone receives it).

    ``occupied_children`` is the non-destructive-bus extra (section 3.2's
    ATM remark): on a COLLISION over a medium with XOR/OR logic, each
    transmitter asserts one of m bus lines — the ordinal of the probed
    node's child holding its index — and every station reads back the OR:
    the set of occupied children.  ``None`` on destructive media, on
    non-collision slots, or when any transmitter could not tag itself.
    """

    state: ChannelState
    start: int
    duration: int
    frame: Frame | None = None
    occupied_children: frozenset[int] | None = None

    @property
    def end(self) -> int:
        return self.start + self.duration


class MACProtocol(abc.ABC):
    """One station's medium-access automaton."""

    def __init__(self) -> None:
        self.station: "Station | None" = None

    def attach(self, station: "Station") -> None:
        """Bind to a station (called once by the station itself)."""
        if self.station is not None:
            raise RuntimeError("MAC already attached to a station")
        self.station = station
        self.on_attach()

    def on_attach(self) -> None:
        """Hook for subclass initialisation after binding."""

    @property
    def bound_station(self) -> "Station":
        if self.station is None:
            raise RuntimeError("MAC not attached to a station")
        return self.station

    @abc.abstractmethod
    def offer(self, now: int) -> MessageInstance | None:
        """The message this station transmits in the slot starting at ``now``.

        Return ``None`` to stay silent.  Must not mutate the queue — the
        dequeue happens in :meth:`observe` when the station sees its own
        frame succeed (transmission is only complete once observed).
        """

    @abc.abstractmethod
    def observe(self, observation: SlotObservation) -> None:
        """Digest the channel state at the end of the round.

        Every station receives the same observation — protocol state that
        is supposed to be common knowledge must be derived only from this.
        """

    def suppress_offer(self) -> None:
        """Retract the offer made this slot (it never reached the wire).

        Called by wrappers (e.g. the dual-bus standby port) that gate a
        replica's transmissions: the replica must digest the coming
        observation as a non-transmitter.  Default: nothing to retract.
        """

    def wants_burst_continuation(self, now: int) -> bool:
        """Will this station keep the carrier after its current success?

        Consulted by the channel only for the station whose frame is being
        delivered this slot, before :meth:`observe`.  Default: no bursting.
        """
        return False

    def contention_tag(self, now: int) -> int | None:
        """The bus line this station asserts during a contention slot.

        Only consulted for stations that transmitted in a colliding slot on
        a *non-destructive* medium.  Tree protocols return the ordinal
        (0..m-1) of the probed node's child containing their index; ``None``
        (the default) means this MAC cannot tag itself, which makes the
        channel withhold occupancy information for the whole slot — always
        safe, merely less informative.
        """
        return None

    def public_state(self) -> tuple[object, ...]:
        """Hashable snapshot of the state that must be common knowledge.

        The network runner can assert that all stations running the same
        deterministic protocol agree slot by slot (consistency invariant of
        distributed tree search).  Protocols with no shared state return ().
        """
        return ()
