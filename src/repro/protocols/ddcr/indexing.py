"""Deadline-class indexing: the function f of section 3.2.

``f(reft, msg) = max( floor((DM(msg) - (alpha + reft)) / c), f* + 1 )``

maps a message's absolute deadline onto a time-tree leaf (a deadline
equivalence class of width c, measured from the shared reference time
``reft`` shifted by the lead ``alpha``).  The max with ``f* + 1`` — here the
search *frontier*, the lowest leaf not yet searched — guarantees a "late"
message (whose raw class has already been searched, or lies in the past)
is serviced at the earliest remaining opportunity, i.e. right upon arrival.

A result beyond ``F - 1`` means the deadline falls outside the scheduling
horizon: the message sits this time tree search out (and compressed time,
if enabled, will pull it in on a later search).
"""

from __future__ import annotations

from repro.protocols.ddcr.config import DDCRConfig

__all__ = ["time_index", "raw_class"]


def raw_class(reft: int, absolute_deadline: int, config: DDCRConfig) -> int:
    """``floor((DM - (alpha + reft)) / c)`` — may be negative for late
    messages (Python's floor division is exact for negatives)."""
    return (absolute_deadline - (config.alpha + reft)) // config.class_width


def mac_visible_deadline(
    arrival: int, relative_deadline: int, config: DDCRConfig
) -> int:
    """The absolute deadline as the MAC layer sees it.

    With a priority map configured (section 5's 802.1Q path), the relative
    deadline crosses the stack as a 3-bit priority code point, so the MAC
    reconstructs only the class representative; otherwise the exact
    deadline is visible.
    """
    if config.priority_map is None:
        return arrival + relative_deadline
    return arrival + config.priority_map.quantise(relative_deadline)


def time_index(
    reft: int, absolute_deadline: int, config: DDCRConfig, frontier: int
) -> int | None:
    """The time-tree leaf for a message, or None when beyond the horizon.

    >>> cfg = DDCRConfig(time_f=4, time_m=2, class_width=10,
    ...                  static_q=4, static_m=2)
    >>> time_index(0, 25, cfg, frontier=0)   # class floor(25/10) = 2
    2
    >>> time_index(0, 25, cfg, frontier=3)   # clamped to the frontier
    3
    >>> time_index(0, 999, cfg, frontier=0) is None   # beyond horizon
    True
    """
    index = max(raw_class(reft, absolute_deadline, config), frontier)
    if index > config.time_f - 1:
        return None
    return index
