"""CSMA/DDCR: Carrier Sense Multi Access / Deadline Driven Collision
Resolution (section 3.2) — the paper's protocol.

Every station runs this automaton; all inter-station coordination state
(mode, reference time ``reft``, tree-search agendas, frontiers) is derived
exclusively from the public ternary channel feedback, so replicas remain in
lockstep (the network runner can assert this every slot).

Mode machine::

    FREE ----collision----> TTS                     (reft := now)
    TTS --agenda empty, out=true--->  ATTEMPT
    TTS --agenda empty, out=false-->  TTS            (reft += theta(c))
    TTS --time-leaf collision----->   STS            (nested)
    STS --agenda empty----------->    TTS            (reft := now)
    ATTEMPT --collision---------->    TTS            (reft := now)
    ATTEMPT --success/silence---->    TTS            (fresh root probe)

FREE is plain CSMA-CD and is only revisited when
``config.exit_to_free_on_idle`` is set and a TTs observes no activity at
all; the paper's pseudocode loops TTs forever ("CSMA/DDCR is run even
though local Q is empty").

Within TTS, a station offers its EDF-first message ``msg*`` when the
probed time-tree interval covers the message's deadline class
``f(reft, msg*) = max(floor((DM - (alpha + reft))/c), frontier)``; messages
beyond the horizon (index > F-1) sit the search out.  A collision on a
time-tree leaf starts a nested static tree search among the stations that
collided there; each uses its static indices in ranked order and may
transmit up to ``nu_i`` messages per STs (section 3.2).
"""

from __future__ import annotations

import enum

from repro.core.trees import LeafInterval
from repro.model.message import MessageInstance
from repro.protocols.base import ChannelState, MACProtocol, SlotObservation
from repro.protocols.ddcr.config import DDCRConfig
from repro.protocols.ddcr.indexing import mac_visible_deadline, time_index
from repro.protocols.ddcr.sts import StaticTreeSearch, STsRecord
from repro.protocols.ddcr.tts import TimeTreeSearch, TTsRecord

__all__ = ["DDCRProtocol", "DDCRMode"]


class DDCRMode(enum.Enum):
    FREE = "free"
    TTS = "tts"
    STS = "sts"
    ATTEMPT = "attempt"


class DDCRProtocol(MACProtocol):
    """One station's CSMA/DDCR automaton."""

    def __init__(self, config: DDCRConfig) -> None:
        super().__init__()
        self.config = config
        # theta is a computed property; the restart path reads it once per
        # slot per station, so snapshot it (the config is frozen).
        self._theta = config.theta
        self.mode = DDCRMode.FREE
        self.reft = 0
        self.tts: TimeTreeSearch | None = None
        self.sts: StaticTreeSearch | None = None
        self._pending_leaf: LeafInterval | None = None
        # Private per-station STs state.
        self._sts_member = False
        self._sts_cursor = 0
        self._offered: MessageInstance | None = None
        # Packet bursting (section 5): the owner is common knowledge
        # (derived from the observed burst_continue flags); the remaining
        # budget is private to the owner.
        self._burst_owner: int | None = None
        self._burst_budget = 0
        # Run records for the bounds/metrics analysis.  Trivial empty runs
        # (no successes, no nested search, at most the root probe) are
        # coalesced into a counter: the idle protocol produces one such run
        # per slot, and storing them all would dominate memory on long
        # simulations.
        self.tts_records: list[TTsRecord] = []
        self.sts_records: list[STsRecord] = []
        self.empty_tts_runs = 0

    def on_attach(self) -> None:
        for index in self.bound_station.static_indices:
            if index >= self.config.static_q:
                raise ValueError(
                    f"static index {index} exceeds q-1="
                    f"{self.config.static_q - 1}"
                )

    # -- index helpers -------------------------------------------------------

    def _msg_star_index(self) -> tuple[MessageInstance | None, int | None]:
        """(msg*, its time-tree index) — None index when beyond horizon."""
        message = self.bound_station.queue.peek()
        if message is None:
            return None, None
        assert self.tts is not None
        index = time_index(
            self.reft,
            mac_visible_deadline(
                message.arrival, message.relative_deadline, self.config
            ),
            self.config,
            self.tts.search.frontier,
        )
        return message, index

    def _sts_static_index(self) -> int | None:
        """The static index this station currently competes with in STs."""
        indices = self.bound_station.static_indices
        if not self._sts_member or self._sts_cursor >= len(indices):
            return None
        return indices[self._sts_cursor]

    def _sts_eligible_message(self) -> MessageInstance | None:
        """msg* if it is due at the leaf under resolution (index == leaf)."""
        assert self._pending_leaf is not None
        message, index = self._msg_star_index()
        if message is None or index is None:
            return None
        if index != self._pending_leaf.lo:
            return None
        return message

    # -- MAC interface -------------------------------------------------------

    def offer(self, now: int) -> MessageInstance | None:
        self._offered = None
        if self._burst_owner is not None:
            # A burst is in progress: only its owner may transmit.
            if self._burst_owner != self.bound_station.station_id:
                return None
            message = self.bound_station.queue.peek()
            if message is None or message.length > self._burst_budget:
                return None  # stale continuation signal: burst ends silent
            self._offered = message
            return message
        if self.mode in (DDCRMode.FREE, DDCRMode.ATTEMPT):
            self._offered = self.bound_station.queue.peek()
            return self._offered
        if self.mode is DDCRMode.TTS:
            assert self.tts is not None
            message, index = self._msg_star_index()
            if message is None or index is None:
                return None
            if self.tts.search.covers(index):
                self._offered = message
            return self._offered
        # STS mode.
        assert self.sts is not None
        static_index = self._sts_static_index()
        if static_index is None or not self.sts.search.covers(static_index):
            return None
        message = self._sts_eligible_message()
        self._offered = message
        return message

    def suppress_offer(self) -> None:
        self._offered = None

    def observe(self, observation: SlotObservation) -> None:
        # ``mine`` check inlined (observe runs once per slot per station).
        success = observation.state is ChannelState.SUCCESS
        frame = observation.frame
        mine = (
            success
            and frame is not None
            and frame.station_id == self.bound_station.station_id
        )
        if mine:
            assert frame is not None
            self.bound_station.complete(
                frame.message, observation.end, observation.start
            )
        if self._burst_owner is not None:
            # Burst slot: the mode machine is frozen; only track the burst.
            self._observe_burst_slot(observation, mine)
            self._offered = None
            return
        if self.mode is DDCRMode.FREE:
            self._observe_free(observation)
        elif self.mode is DDCRMode.ATTEMPT:
            self._observe_attempt(observation)
        elif self.mode is DDCRMode.TTS:
            self._observe_tts(observation, mine)
        else:
            self._observe_sts(observation, mine)
        if success:
            self._maybe_start_burst(observation, mine)
        self._offered = None

    # -- per-mode transitions --------------------------------------------------

    def _observe_free(self, observation: SlotObservation) -> None:
        if observation.state is ChannelState.COLLISION:
            self._enter_tts(
                observation.end,
                after_collision=True,
                occupied=observation.occupied_children,
            )

    def _observe_attempt(self, observation: SlotObservation) -> None:
        if observation.state is ChannelState.COLLISION:
            self._enter_tts(
                observation.end,
                after_collision=True,
                occupied=observation.occupied_children,
            )
        else:
            self._enter_tts(observation.end, after_collision=False, keep_reft=True)

    def _observe_tts(self, observation: SlotObservation, mine: bool) -> None:
        assert self.tts is not None
        search = self.tts.search
        if (
            observation.state is ChannelState.COLLISION
            and search.current.is_leaf()
        ):
            # Time-leaf collision: resolve by a nested static tree search.
            # On a non-destructive bus the colliders tagged the static
            # root's children during this very slot (the leaf collision IS
            # the static root probe).
            leaf = search.begin_leaf_resolution()
            self._pending_leaf = leaf
            self.sts = StaticTreeSearch.start(
                self.config,
                leaf,
                observation.end,
                occupied_children=observation.occupied_children,
            )
            self.tts.nested_sts_runs += 1
            self._sts_member = self._offered is not None
            self._sts_cursor = 0
            self.mode = DDCRMode.STS
            return
        search.feed(observation.state, observation.occupied_children)
        if observation.state is ChannelState.SUCCESS:
            self.tts.transmitted = True
            # reft := local physical time on every in-TTs transmission.
            self.reft = observation.end
        if search.done:
            self._finish_tts(observation.end)

    def _observe_sts(self, observation: SlotObservation, mine: bool) -> None:
        assert self.sts is not None and self.tts is not None
        if (
            observation.state is ChannelState.COLLISION
            and self.sts.search.current.is_leaf()
        ):
            # Static indices have unique owners, so a leaf collision can
            # only be channel noise: re-probe the same leaf next slot.
            self.sts.search.retry_current()
            return
        self.sts.search.feed(observation.state, observation.occupied_children)
        if mine:
            # Ranked order: my next transmission uses my next static index.
            self._sts_cursor += 1
        if observation.state is ChannelState.SUCCESS:
            self.tts.transmitted = True
        if self.sts.done:
            self.sts_records.append(self.sts.finish(observation.end))
            # reft is updated by STs upon completion (section 3.2).
            self.reft = observation.end
            assert self._pending_leaf is not None
            self.tts.search.complete_leaf(self._pending_leaf)
            self._pending_leaf = None
            self.sts = None
            self._sts_member = False
            self._sts_cursor = 0
            self.mode = DDCRMode.TTS
            if self.tts.search.done:
                self._finish_tts(observation.end)

    # -- TTs lifecycle -----------------------------------------------------------

    def _enter_tts(
        self,
        now: int,
        after_collision: bool,
        keep_reft: bool = False,
        occupied: frozenset[int] | None = None,
    ) -> None:
        if after_collision or not keep_reft:
            self.reft = now
        self.tts = TimeTreeSearch.start(
            self.config,
            now,
            after_collision=after_collision,
            occupied_children=occupied,
        )
        self.mode = DDCRMode.TTS

    def _finish_tts(self, now: int) -> None:
        assert self.tts is not None
        tts = self.tts
        search = tts.search
        if (
            not tts.triggered_by_collision
            and tts.nested_sts_runs == 0
            and search.successes == 0
            and search.wasted_slots <= 1
        ):
            # Trivial empty run: nothing transmitted (so ``out`` is
            # necessarily false) and at most one silent root probe.  The
            # idle protocol produces one of these per slot, so skip the
            # record object entirely, not just its storage.
            self.empty_tts_runs += 1
            if self.config.exit_to_free_on_idle:
                self.tts = None
                self.mode = DDCRMode.FREE
                return
            # Compressed time: pull future classes toward the horizon.
            # Recycle the finished replica in place: the tree shape is fixed,
            # so this equals TimeTreeSearch.start(..., after_collision=False)
            # without the per-slot allocations.
            self.reft += self._theta
            tts.restart_fresh(now)
            self.mode = DDCRMode.TTS
            return
        self.tts_records.append(tts.finish(now))
        if tts.out:
            self.tts = None
            self.mode = DDCRMode.ATTEMPT
            return
        # A non-trivial run that still transmitted nothing: a trivial run is
        # the only way to hear pure silence, so no exit-to-FREE check here.
        self.reft += self._theta
        tts.restart_fresh(now)
        self.mode = DDCRMode.TTS

    # -- packet bursting (section 5) --------------------------------------------

    def wants_burst_continuation(self, now: int) -> bool:
        """Keep the carrier after the frame currently being delivered?

        True when bursting is enabled, another EDF-ranked message is
        waiting, and it fits what remains of the burst budget after the
        current frame (the first frame of a burst counts toward the limit,
        as in 802.3z).
        """
        if self.config.burst_limit <= 0 or self._offered is None:
            return False
        if self._burst_owner is None:
            remaining = self.config.burst_limit - self._offered.length
        else:
            remaining = self._burst_budget - self._offered.length
        if remaining <= 0:
            return False
        queued = self.bound_station.queue.snapshot()
        for message in queued:
            if message.seq != self._offered.seq:
                return message.length <= remaining
        return False

    def _observe_burst_slot(
        self, observation: SlotObservation, mine: bool
    ) -> None:
        """Digest a slot that happened under an in-progress burst."""
        if observation.state is ChannelState.SUCCESS:
            frame = observation.frame
            assert frame is not None
            if mine:
                self._burst_budget -= frame.message.length
            if not frame.burst_continue:
                self._burst_owner = None
        else:
            # Silence (stale continuation signal) or a noise collision:
            # the burst is over either way.
            self._burst_owner = None

    def _maybe_start_burst(
        self, observation: SlotObservation, mine: bool
    ) -> None:
        """Arm the burst state when a success carried the continue flag."""
        frame = observation.frame
        if (
            observation.state is ChannelState.SUCCESS
            and frame is not None
            and frame.burst_continue
        ):
            self._burst_owner = frame.station_id
            if mine:
                self._burst_budget = (
                    self.config.burst_limit - frame.message.length
                )

    # -- non-destructive bus support -------------------------------------------

    def contention_tag(self, now: int) -> int | None:
        """The bus line asserted in a contention slot (non-destructive bus).

        Per :meth:`repro.protocols.base.MACProtocol.contention_tag`: the
        ordinal of the probed node's child containing this station's index.
        During a time-*leaf* probe the anticipated nested search's root is
        tagged instead (the leaf collision doubles as the static root
        probe, section 3.2).  At a FREE/ATTEMPT entry collision the time
        tree is tagged with a provisional ``reft = now`` — one slot earlier
        than the reft the search will adopt; a deadline sitting exactly on
        a class boundary may then be tagged one child off, costing at most
        one deferred message (never a safety violation).
        """
        if self._offered is None:
            return None
        config = self.config
        if self.mode in (DDCRMode.FREE, DDCRMode.ATTEMPT):
            index = time_index(
                now,
                mac_visible_deadline(
                    self._offered.arrival,
                    self._offered.relative_deadline,
                    config,
                ),
                config,
                frontier=0,
            )
            if index is None:
                return None
            return index // (config.time_f // config.time_m)
        if self.mode is DDCRMode.TTS:
            assert self.tts is not None
            node = self.tts.search.current
            if node.is_leaf():
                first_static = self.bound_station.static_indices[0]
                return first_static // (
                    config.static_q // config.static_m
                )
            _, index = self._msg_star_index()
            if index is None:
                return None
            return (index - node.lo) // (node.width // config.time_m)
        # STS mode.
        assert self.sts is not None
        node = self.sts.search.current
        static_index = self._sts_static_index()
        if static_index is None or node.is_leaf():
            return None
        return (static_index - node.lo) // (
            node.width // config.static_m
        )

    # -- lockstep invariant ---------------------------------------------------

    def public_state(self) -> tuple[object, ...]:
        key: tuple[object, ...] = (self.mode.value, self.reft, self._burst_owner)
        if self.tts is not None:
            key += self.tts.state_key()
        if self.sts is not None:
            key += self.sts.state_key()
        return key
