"""Static tree search (STs) state and per-run records.

STs resolves a time-tree *leaf* collision — several sources holding
messages of the same deadline equivalence class.  It is an m-ary splitting
search over the q statically allocated indices; the time-leaf collision
itself counts as the static root probe (section 3.2).  Within one STs a
source uses its static indices in ranked order and may transmit up to
``nu_i`` messages.
"""

from __future__ import annotations

import dataclasses

from repro.core.trees import LeafInterval
from repro.protocols.ddcr.config import DDCRConfig
from repro.protocols.treesearch import SplittingSearch

__all__ = ["StaticTreeSearch", "STsRecord"]


@dataclasses.dataclass(frozen=True, slots=True)
class STsRecord:
    """Accounting for one completed STs run.

    ``wasted_slots`` includes the triggering time-leaf collision (the
    static root probe) plus all in-search collision/empty slots — directly
    comparable to ``1 + xi(k, q)``-style analytic costs, where the leading
    1 is the root probe.  ``successes`` is the number of messages the run
    transmitted.
    """

    started_at: int
    ended_at: int
    time_leaf: int
    wasted_slots: int
    successes: int


@dataclasses.dataclass(slots=True)
class StaticTreeSearch:
    """One in-progress STs run (per-station replica, common knowledge)."""

    search: SplittingSearch
    time_leaf: LeafInterval
    started_at: int

    @classmethod
    def start(
        cls,
        config: DDCRConfig,
        time_leaf: LeafInterval,
        now: int,
        occupied_children: frozenset[int] | None = None,
    ) -> "StaticTreeSearch":
        """Begin an STs run; the time-leaf collision was the root probe.

        On a non-destructive bus the colliding stations tagged the static
        root's children, pruning the empty ones from the very start.
        """
        return cls(
            search=SplittingSearch.after_root_collision(
                config.static_tree(), occupied_children
            ),
            time_leaf=time_leaf,
            started_at=now,
        )

    @property
    def done(self) -> bool:
        return self.search.done

    def finish(self, now: int) -> STsRecord:
        if not self.done:
            raise RuntimeError("STs still in progress")
        return STsRecord(
            started_at=self.started_at,
            ended_at=now,
            time_leaf=self.time_leaf.lo,
            wasted_slots=1 + self.search.wasted_slots,
            successes=self.search.successes,
        )

    def state_key(self) -> tuple[object, ...]:
        return self.search.state_key() + (self.time_leaf.lo,)
