"""CSMA/DDCR — the paper's deadline-driven collision resolution protocol."""

from repro.protocols.ddcr.config import DDCRConfig
from repro.protocols.ddcr.indexing import raw_class, time_index
from repro.protocols.ddcr.protocol import DDCRMode, DDCRProtocol
from repro.protocols.ddcr.sts import StaticTreeSearch, STsRecord
from repro.protocols.ddcr.tts import TimeTreeSearch, TTsRecord

__all__ = [
    "DDCRConfig",
    "raw_class",
    "time_index",
    "DDCRMode",
    "DDCRProtocol",
    "StaticTreeSearch",
    "STsRecord",
    "TimeTreeSearch",
    "TTsRecord",
]
