"""Time tree search (TTs) state and per-run records.

A TTs run is an m-ary splitting search over the F deadline-equivalence
classes.  The state wraps the generic
:class:`~repro.protocols.treesearch.SplittingSearch` replica and tracks the
outcome flag ``out`` ("at least one message was transmitted during this
search", including transmissions inside nested static tree searches).
"""

from __future__ import annotations

import dataclasses

from repro.protocols.ddcr.config import DDCRConfig
from repro.protocols.treesearch import SplittingSearch

__all__ = ["TimeTreeSearch", "TTsRecord"]


@dataclasses.dataclass(frozen=True, slots=True)
class TTsRecord:
    """Accounting for one completed TTs run (for the bounds analysis).

    ``wasted_slots`` counts collision + empty probe slots, including the
    entry collision when the run was triggered by one (the root probe) and
    the time-leaf collisions that started nested STs runs, but not the
    slots spent inside the STs runs themselves (those are recorded in their
    own :class:`~repro.protocols.ddcr.sts.STsRecord`).
    """

    started_at: int
    ended_at: int
    wasted_slots: int
    successes: int
    out: bool
    triggered_by_collision: bool
    nested_sts_runs: int


@dataclasses.dataclass(slots=True)
class TimeTreeSearch:
    """One in-progress TTs run (per-station replica, common knowledge)."""

    search: SplittingSearch
    started_at: int
    triggered_by_collision: bool
    transmitted: bool = False
    nested_sts_runs: int = 0

    @classmethod
    def start(
        cls,
        config: DDCRConfig,
        now: int,
        after_collision: bool,
        occupied_children: frozenset[int] | None = None,
    ) -> "TimeTreeSearch":
        """Begin a TTs run.

        When triggered by a collision (FREE-mode or post-attempt), that
        collision already served as the root probe, so the run starts with
        the root's m children on the agenda — an otherwise-empty run then
        costs exactly the "m consecutive empty slots" the paper describes.
        A repeat run (after ``out = false`` or a quiet attempt slot) probes
        the root itself first.
        """
        tree = config.time_tree()
        if after_collision:
            search = SplittingSearch.after_root_collision(
                tree, occupied_children
            )
        else:
            search = SplittingSearch.fresh(tree)
        return cls(
            search=search, started_at=now, triggered_by_collision=after_collision
        )

    def restart_fresh(self, now: int) -> None:
        """Reset in place to ``start(config, now, after_collision=False)``.

        The tree shape is fixed per configuration, so a finished replica can
        be recycled for the back-to-back repeat run — the steady state of an
        idle channel — without reallocating the search objects.
        """
        self.search.restart_fresh()
        self.started_at = now
        self.triggered_by_collision = False
        self.transmitted = False
        self.nested_sts_runs = 0

    @property
    def done(self) -> bool:
        return self.search.done

    @property
    def out(self) -> bool:
        """The paper's boolean: did this search transmit anything?"""
        return self.transmitted

    def finish(self, now: int) -> TTsRecord:
        if not self.done:
            raise RuntimeError("TTs still in progress")
        entry_cost = 1 if self.triggered_by_collision else 0
        return TTsRecord(
            started_at=self.started_at,
            ended_at=now,
            wasted_slots=entry_cost + self.search.wasted_slots,
            successes=self.search.successes,
            out=self.out,
            triggered_by_collision=self.triggered_by_collision,
            nested_sts_runs=self.nested_sts_runs,
        )

    def state_key(self) -> tuple[object, ...]:
        return self.search.state_key() + (
            self.transmitted,
            self.nested_sts_runs,
        )
