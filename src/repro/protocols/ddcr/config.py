"""CSMA/DDCR configuration (the tunables of section 3.2).

* ``time_f`` (F) — number of time-tree leaves; ``c * F`` is the scheduling
  horizon.
* ``time_m`` — branching degree of the time tree.
* ``class_width`` (c) — size of a deadline equivalence class, in bit-times.
* ``alpha`` — lead time letting messages enter a time tree search before it
  is "too late" (a static tree search may outlast c).
* ``theta`` — the compressed-time increment theta(c) applied to ``reft``
  after an empty time tree search; any linear function of c, here expressed
  as ``theta_factor * c`` (0 disables compressed time).
* ``static_q`` (q) / ``static_m`` — static tree shape; q must be >= the
  number of sources z, and every allocated static index must fit.
* ``exit_to_free_on_idle`` — optional deviation from the paper's pseudocode
  (which loops TTs forever): when True, a TTs that observed no activity at
  all returns the channel to plain CSMA-CD until the next collision.  Off
  by default; the ABL-THETA bench quantifies the difference.
* ``burst_limit`` — half-duplex Gigabit Ethernet packet bursting
  (section 5): after a success, the station may keep transmitting its
  EDF-ranked queue without relinquishing the channel, up to this many
  DL-PDU bits per burst.  0 (default) disables bursting.
* ``priority_map`` — the standards-conformant path of section 5: when
  set, the MAC layer sees only the 3-bit 802.1p priority field, i.e. the
  deadline *quantised* through the map, and computes time-tree indices
  from the class representative.  None (default) gives the MAC the exact
  deadline.  Quantisation can only merge deadline classes, never invert
  them (see :mod:`repro.net.dot1q`), so the ABL-PCP experiment measures a
  pure loss-of-resolution effect.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.core.trees import BalancedTree, is_power_of

if typing.TYPE_CHECKING:  # pragma: no cover - layering guard
    from repro.net.dot1q import PriorityMap

__all__ = ["DDCRConfig"]


@dataclasses.dataclass(frozen=True, slots=True)
class DDCRConfig:
    """Immutable CSMA/DDCR parameter set shared by all stations."""

    time_f: int
    time_m: int
    class_width: int
    static_q: int
    static_m: int
    alpha: int = 0
    theta_factor: float = 1.0
    exit_to_free_on_idle: bool = False
    burst_limit: int = 0
    priority_map: "PriorityMap | None" = None

    def __post_init__(self) -> None:
        if not is_power_of(self.time_f, self.time_m):
            raise ValueError(
                f"F={self.time_f} is not a power of m={self.time_m}"
            )
        if not is_power_of(self.static_q, self.static_m):
            raise ValueError(
                f"q={self.static_q} is not a power of m={self.static_m}"
            )
        if self.class_width < 1:
            raise ValueError(
                f"class width c must be >= 1, got {self.class_width}"
            )
        if self.alpha < 0:
            raise ValueError(f"alpha must be >= 0, got {self.alpha}")
        if self.theta_factor < 0:
            raise ValueError(
                f"theta_factor must be >= 0, got {self.theta_factor}"
            )
        if self.burst_limit < 0:
            raise ValueError(
                f"burst_limit must be >= 0, got {self.burst_limit}"
            )

    @property
    def theta(self) -> int:
        """The compressed-time increment theta(c), in bit-times."""
        return round(self.theta_factor * self.class_width)

    @property
    def horizon(self) -> int:
        """The scheduling horizon c*F covered by one time tree."""
        return self.class_width * self.time_f

    def collision_run_bound(self, margin: int = 8) -> int:
        """Longest run of consecutive genuine collisions, plus ``margin``.

        A full collision-resolution descent collides once per tree level:
        the time-tree descent, the time-leaf collision opening the nested
        static search, and the static-tree descent —
        ``log_m(F) + log_m(q) + 1`` slots.  Consumers needing a safety
        threshold above it (dual-bus jam detection, the search-length
        invariant monitor) add a margin for back-to-back searches.
        """
        from repro.core.trees import integer_log

        depth = (
            integer_log(self.time_f, self.time_m)
            + integer_log(self.static_q, self.static_m)
            + 1
        )
        return depth + margin

    def time_tree(self) -> BalancedTree:
        return BalancedTree.of(m=self.time_m, leaves=self.time_f)

    def static_tree(self) -> BalancedTree:
        return BalancedTree.of(m=self.static_m, leaves=self.static_q)

    def tree_parameters(self):
        """The shapes the feasibility conditions consume (section 4.3).

        Imported lazily: the protocol layer sits above :mod:`repro.core`,
        and importing feasibility at module scope would close an import
        cycle through :mod:`repro.net`.
        """
        from repro.core.feasibility import TreeParameters

        return TreeParameters(
            time_f=self.time_f,
            time_m=self.time_m,
            static_q=self.static_q,
            static_m=self.static_m,
        )
