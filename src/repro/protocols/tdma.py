"""Baseline: TDMA — fixed round-robin ownership of the channel.

The contention-free strawman: station ``i`` may transmit only in rounds
where ``round_index % z == position(i)``.  Collision-free by construction
and trivially analysable, but wastes the channel whenever the owner is idle
and gives every station worst-case access latency proportional to ``z``
regardless of urgency — the classic argument for contention protocols on
bursty real-time traffic (section 3.1).

The slot owner advances once per channel round (success or idle alike), so
the schedule is driven purely by public feedback and stays consistent.
"""

from __future__ import annotations

from repro.model.message import MessageInstance
from repro.protocols.base import ChannelState, MACProtocol, SlotObservation

__all__ = ["TDMAProtocol"]


class TDMAProtocol(MACProtocol):
    """Round-robin TDMA over a known station roster."""

    def __init__(self, roster: tuple[int, ...]) -> None:
        super().__init__()
        if not roster:
            raise ValueError("TDMA roster must not be empty")
        if len(set(roster)) != len(roster):
            raise ValueError("TDMA roster has duplicate station ids")
        self.roster = roster
        self._turn = 0
        self.noisy_slots = 0

    def on_attach(self) -> None:
        if self.bound_station.station_id not in self.roster:
            raise ValueError(
                f"station {self.bound_station.station_id} not in TDMA roster"
            )

    @property
    def current_owner(self) -> int:
        return self.roster[self._turn]

    def offer(self, now: int) -> MessageInstance | None:
        if self.current_owner != self.bound_station.station_id:
            return None
        return self.bound_station.queue.peek()

    def observe(self, observation: SlotObservation) -> None:
        station = self.bound_station
        if observation.state is ChannelState.SUCCESS:
            frame = observation.frame
            assert frame is not None
            if frame.station_id == station.station_id:
                station.complete(frame.message, observation.end, observation.start)
        elif observation.state is ChannelState.COLLISION:
            # A true TDMA schedule cannot collide; a collision therefore
            # means channel noise destroyed the owner's slot.  The owner
            # retries on its next turn (the message stays queued).
            self.noisy_slots += 1
        self._turn = (self._turn + 1) % len(self.roster)

    def public_state(self) -> tuple[object, ...]:
        return (self._turn,)
