"""Synthetic admission traces: city-scale churn over workload templates.

A trace is a deterministic list of :class:`~repro.serve.model.Request`
events — joins, leaves, rescales and density reconfigurations — drawn
from the same application class shapes the workload factories use
(:mod:`repro.model.workloads`: videoconference, trading floor, air
traffic control).  Arrival of *requests* is modelled as Poisson-thinned
churn with optional join bursts (a station powering up brings several
classes at once), the adversarial-arrival analogue at control-plane
timescale.

Determinism: every draw comes from named
:class:`~repro.sim.rng.SeedSequenceRegistry` streams keyed by the trace
seed, so the same :class:`TraceConfig` always yields the same byte-level
request list — the substrate of the replay byte-identity tests.
"""

from __future__ import annotations

import dataclasses

from repro.serve.model import Request
from repro.sim.rng import SeedSequenceRegistry
from repro.sweep import Campaign, register_campaign

__all__ = ["ClassTemplate", "TEMPLATES", "TraceConfig", "generate_trace"]

_MS = 1_000_000

#: Window jitter factors a join/rescale may apply to a template window.
_WINDOW_FACTORS = (0.75, 1.0, 1.0, 1.0, 1.5, 2.0)

#: Density scales a reconfigure event draws from.
_RECONFIGURE_SCALES = (0.5, 0.75, 1.0, 1.0, 1.5, 2.0)


@dataclasses.dataclass(frozen=True, slots=True)
class ClassTemplate:
    """One application class shape (scale-1.0 base, 1 Gb/s bit-times)."""

    key: str
    length: int
    deadline: int
    a: int
    w: int


#: The workload factories' class shapes, reusable as trace ingredients.
_VIDEO = ClassTemplate("video", 12_000, 5 * _MS, 1, 1 * _MS)
_AUDIO = ClassTemplate("audio", 1_600, 2 * _MS, 1, 2 * _MS)
_CONTROL = ClassTemplate("control", 500, 10 * _MS, 1, 20 * _MS)
_ORDER = ClassTemplate("order", 2_000, 1 * _MS, 4, 1 * _MS)
_TICKER = ClassTemplate("ticker", 8_000, 8 * _MS, 2, 4 * _MS)
_TRACKS = ClassTemplate("tracks", 24_000, 12 * _MS, 2, 4 * _MS)
_COMMAND = ClassTemplate("command", 1_000, 4 * _MS, 1, 10 * _MS)
_STATUS = ClassTemplate("status", 4_000, 50 * _MS, 1, 50 * _MS)

TEMPLATES: dict[str, tuple[ClassTemplate, ...]] = {
    "videoconference": (_VIDEO, _AUDIO, _CONTROL),
    "trading": (_ORDER, _TICKER),
    "atc": (_TRACKS, _COMMAND, _STATUS),
    #: The city-scale mixture: every application sharing one segment.
    "city": (
        _VIDEO, _AUDIO, _CONTROL, _ORDER, _TICKER, _TRACKS, _COMMAND,
        _STATUS,
    ),
}


@dataclasses.dataclass(frozen=True, slots=True)
class TraceConfig:
    """Shape of one synthetic trace (all fields deterministic inputs).

    ``churn`` is the probability a steady-state event retires an admitted
    class rather than joining a new one; ``rescale_rate`` and
    ``reconfigure_rate`` thin off their event kinds first; ``burst`` is
    the probability a join turns into a burst of 2-7 consecutive joins
    (geometrically shaped, bounded).  ``nu`` is the static-leaf count a
    new source requests.
    """

    events: int = 1_000
    stations: int = 64
    seed: int = 0
    template: str = "city"
    nu: int = 1
    churn: float = 0.4
    rescale_rate: float = 0.12
    reconfigure_rate: float = 0.02
    burst: float = 0.05

    def __post_init__(self) -> None:
        if self.events < 1:
            raise ValueError(f"events must be >= 1, got {self.events}")
        if self.stations < 1:
            raise ValueError(f"stations must be >= 1, got {self.stations}")
        if self.template not in TEMPLATES:
            raise ValueError(
                f"unknown template {self.template!r} "
                f"(known: {', '.join(sorted(TEMPLATES))})"
            )
        if self.nu < 1:
            raise ValueError(f"nu must be >= 1, got {self.nu}")
        for field in ("churn", "rescale_rate", "reconfigure_rate", "burst"):
            value = getattr(self, field)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{field} must be in [0, 1], got {value}")


def generate_trace(config: TraceConfig) -> list[Request]:
    """The deterministic request list a :class:`TraceConfig` describes.

    The generator tracks an *optimistic* view of the admitted set (it
    assumes every join is admitted) so leaves and rescales mostly target
    live classes; the service may still answer ``error`` for a class it
    actually rejected — a deliberately exercised path, not a bug.
    """
    registry = SeedSequenceRegistry(config.seed).spawn("serve-trace")
    ops = registry.stream("ops")
    picks = registry.stream("picks")
    templates = TEMPLATES[config.template]
    #: Optimistic admitted view, admission order: (source_id, name, a, w).
    admitted: list[tuple[int, str, int, int]] = []
    requests: list[Request] = []
    counter = 0
    pending_burst = 0

    def make_join(seq: int) -> Request:
        nonlocal counter
        source = picks.randrange(config.stations)
        template = templates[picks.randrange(len(templates))]
        factor = _WINDOW_FACTORS[picks.randrange(len(_WINDOW_FACTORS))]
        w = max(1, int(template.w * factor))
        name = f"{template.key}-{source}-{counter}"
        counter += 1
        admitted.append((source, name, template.a, w))
        return Request(
            seq=seq,
            kind="join",
            source_id=source,
            name=name,
            nu=config.nu,
            length=template.length,
            deadline=template.deadline,
            a=template.a,
            w=w,
        )

    for seq in range(config.events):
        if pending_burst > 0:
            pending_burst -= 1
            requests.append(make_join(seq))
            continue
        roll = ops.random()
        if roll < config.reconfigure_rate:
            scale = _RECONFIGURE_SCALES[
                picks.randrange(len(_RECONFIGURE_SCALES))
            ]
            requests.append(Request(seq=seq, kind="reconfigure", scale=scale))
            continue
        roll -= config.reconfigure_rate
        if admitted and roll < config.rescale_rate:
            index = picks.randrange(len(admitted))
            source, name, a, w = admitted[index]
            factor = _WINDOW_FACTORS[picks.randrange(len(_WINDOW_FACTORS))]
            new_w = max(1, int(w * factor))
            admitted[index] = (source, name, a, new_w)
            requests.append(
                Request(seq=seq, kind="rescale", source_id=source,
                        name=name, a=a, w=new_w)
            )
            continue
        roll -= config.rescale_rate
        if admitted and ops.random() < config.churn:
            index = picks.randrange(len(admitted))
            source, name, _, _ = admitted.pop(index)
            requests.append(
                Request(seq=seq, kind="leave", source_id=source, name=name)
            )
            continue
        if ops.random() < config.burst:
            pending_burst = 1 + picks.randrange(6)
        requests.append(make_join(seq))
    return requests


#: Canonical serve sweep: SERVE-CHECK over trace sizes and sim seeds —
#: each point generates a trace, runs it through the admission service,
#: then counter-checks the surviving set against the scalar oracle and a
#: short DDCR simulation.  Registered here so the sweep CLI lists it
#: (``repro.sweep.registry`` imports :mod:`repro.serve` lazily).
register_campaign(
    Campaign.make(
        "serve-traces",
        experiment="SERVE-CHECK",
        axes={"events": (32, 64)},
        seeds=(0, 1),
        params={"stations": 12},
        batch_size=2,
        description=(
            "Admission-service traces counter-checked against the scalar "
            "FC oracle and a peak-load DDCR simulation"
        ),
    )
)
