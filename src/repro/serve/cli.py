"""``python -m repro.serve`` — the admission-service operator CLI.

Subcommands::

    trace    generate a synthetic churn trace to a JSONL file
    run      drive a trace through the service, persisting the event log
    replay   re-decide a persisted event log, byte-comparing decisions
    verify   replay + periodic oracle checks + final simulation check

``run`` and ``verify`` resolve their background SERVE-CHECK simulations
through the normal cache-aware executor, so ``verify`` after ``run`` on
the same cache directory resubmits nothing.  Exit status is 0 when clean,
2 when any incident (divergence, failed sim check, replay mismatch) was
recorded — the contract ``check --ci``'s serve-smoke relies on.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

from repro.cliopts import cache_options, execution_options, positive_int
from repro.serve.model import Request
from repro.serve.service import (
    AdmissionService,
    ServeConfig,
    read_event_log,
    replay_event_log,
)
from repro.serve.traces import TEMPLATES, TraceConfig, generate_trace

__all__ = ["main"]


def _trace_options() -> argparse.ArgumentParser:
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("trace shape")
    group.add_argument("--events", type=positive_int, default=1_000,
                       metavar="N", help="trace length (default: 1000)")
    group.add_argument("--stations", type=positive_int, default=64,
                       metavar="N",
                       help="station (source) population (default: 64)")
    group.add_argument("--template", choices=sorted(TEMPLATES),
                       default="city",
                       help="class-template mixture (default: city)")
    group.add_argument("--trace-seed", type=int, default=0, metavar="N",
                       help="trace generator seed (default: 0)")
    return parent


def _service_options() -> argparse.ArgumentParser:
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("service")
    group.add_argument("--static-q", type=positive_int, default=256,
                       metavar="Q",
                       help="static tree leaves (default: 256)")
    group.add_argument("--medium", default="gigabit-ethernet",
                       help="medium profile name (default: %(default)s)")
    group.add_argument("--check-every", type=int, default=0, metavar="N",
                       help="counter-check cadence in requests "
                       "(0 disables periodic checks; default: 0)")
    return parent


def _obs2_options() -> argparse.ArgumentParser:
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("observability v2")
    group.add_argument("--flight-recorder", type=positive_int, default=None,
                       metavar="N",
                       help="arm a flight recorder keeping the last N "
                       "trace events; dumped to flightrec.jsonl in the "
                       "log directory (default: off)")
    group.add_argument("--export-every", type=positive_int, default=None,
                       metavar="N",
                       help="rewrite metrics.prom and append to "
                       "metrics.jsonl in the log directory every N "
                       "requests (default: off)")
    group.add_argument("--slos", default=None, metavar="FILE",
                       help="evaluate SLO burn rates from this objectives "
                       "JSON file ('default' for the built-in serve "
                       "objectives); breaches land as slo-breach "
                       "incidents (default: off)")
    return parent


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Admission-control service over incremental "
        "B_DDCR feasibility bounds.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    trace = commands.add_parser(
        "trace", parents=[_trace_options()],
        help="generate a synthetic churn trace",
    )
    trace.add_argument("output", help="trace JSONL path (- for stdout)")

    run = commands.add_parser(
        "run",
        parents=[_trace_options(), _service_options(),
                 execution_options(), cache_options(), _obs2_options()],
        help="drive a trace through the service, persisting the log",
    )
    run.add_argument("log_dir", help="event-log directory to create")
    run.add_argument("--trace-file", default=None, metavar="FILE",
                     help="drive this trace file instead of generating one")

    replay = commands.add_parser(
        "replay", parents=[execution_options()],
        help="re-decide a persisted log, byte-comparing decisions",
    )
    replay.add_argument("log_dir", help="event-log directory to replay")

    verify = commands.add_parser(
        "verify", parents=[execution_options(), cache_options()],
        help="replay plus oracle and simulation counter-checks",
    )
    verify.add_argument("log_dir", help="event-log directory to verify")
    verify.add_argument("--check-every", type=positive_int, default=64,
                        metavar="N",
                        help="oracle-check cadence during replay "
                        "(default: 64)")
    return parser


def _load_trace(path: str) -> list[Request]:
    requests = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                requests.append(Request.from_dict(json.loads(line)))
    return requests


def _make_executor(args: argparse.Namespace):
    """A cache-aware executor for background SERVE-CHECK runs."""
    from repro.runtime import ParallelExecutor, ResultCache

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    return ParallelExecutor(jobs=args.jobs, cache=cache, force=args.force)


def _summary(service: AdmissionService, decisions) -> str:
    counts: dict[str, int] = {}
    for decision in decisions:
        counts[decision.verdict] = counts.get(decision.verdict, 0) + 1
    evicted = sum(len(decision.evicted) for decision in decisions)
    parts = [f"{len(decisions)} decision(s)"]
    for verdict in ("admit", "reject", "ok", "error"):
        if counts.get(verdict):
            parts.append(f"{counts[verdict]} {verdict}")
    if evicted:
        parts.append(f"{evicted} evicted")
    parts.append(f"{service.class_count} class(es) admitted")
    parts.append(f"{len(service.incidents)} incident(s)")
    return ", ".join(parts)


def _write_manifest(args: argparse.Namespace, service: AdmissionService,
                    registry, command: str, wall: float) -> None:
    if registry is None or getattr(args, "telemetry", None) is None:
        return
    from repro.obs.manifest import RunTelemetry, write_manifests

    manifest = RunTelemetry.from_registry(
        registry,
        run_id=f"serve-{command}",
        seed=getattr(args, "seed", None),
        source="serve",
        wall_seconds=wall,
    )
    written = write_manifests(args.telemetry, [manifest])
    print(f"telemetry: wrote {written} manifest(s) to {args.telemetry}")


def _exit_code(service: AdmissionService) -> int:
    if service.incidents:
        for incident in service.incidents:
            print(f"INCIDENT {incident.kind} at seq {incident.at_seq}: "
                  f"{incident.detail}", file=sys.stderr)
        return 2
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    config = TraceConfig(
        events=args.events, stations=args.stations,
        seed=args.trace_seed, template=args.template,
    )
    lines = [request.to_json() for request in generate_trace(config)]
    if args.output == "-":
        for line in lines:
            print(line)
    else:
        path = pathlib.Path(args.output)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        print(f"wrote {len(lines)} request(s) to {path}")
    return 0


def _telemetry_registry(args: argparse.Namespace):
    if getattr(args, "telemetry", None) is None:
        return None
    from repro.obs.instruments import Telemetry

    return Telemetry()


def _obs2_plane(args: argparse.Namespace, registry):
    """Build the (tracer, exporter, slos, registry) quadruple from flags.

    The exporter and SLO engine read live instruments, so requesting
    either without ``--telemetry`` still allocates a real registry (the
    manifest is only written when ``--telemetry`` was given).
    """
    tracer = None
    if args.flight_recorder is not None:
        from repro.obs.tracer import FlightRecorder

        tracer = FlightRecorder(capacity=args.flight_recorder)
    exporter = None
    slos = None
    if args.export_every is not None or args.slos is not None:
        if registry is None:
            from repro.obs.instruments import Telemetry

            registry = Telemetry()
        if args.export_every is not None:
            from repro.obs.export import StreamExporter

            log_dir = pathlib.Path(args.log_dir)
            exporter = StreamExporter(
                registry,
                log_dir / "metrics.prom",
                log_dir / "metrics.jsonl",
                every=args.export_every,
            )
        if args.slos is not None:
            from repro.obs.slo import (
                SloEngine,
                default_serve_objectives,
                load_objectives,
            )

            objectives = (
                default_serve_objectives()
                if args.slos == "default"
                else load_objectives(args.slos)
            )
            slos = SloEngine(objectives)
    return tracer, exporter, slos, registry


def _cmd_run(args: argparse.Namespace) -> int:
    if args.trace_file is not None:
        trace = _load_trace(args.trace_file)
    else:
        trace = generate_trace(TraceConfig(
            events=args.events, stations=args.stations,
            seed=args.trace_seed, template=args.template,
        ))
    config = ServeConfig(
        static_q=args.static_q, medium=args.medium,
        check_every=args.check_every,
    )
    registry = _telemetry_registry(args)
    tracer, exporter, slos, registry = _obs2_plane(args, registry)
    started = time.perf_counter()
    with AdmissionService(
        config,
        telemetry=registry,
        executor=_make_executor(args),
        log_dir=args.log_dir,
        tracer=tracer,
        exporter=exporter,
        slos=slos,
    ) as service:
        decisions = service.run_trace(trace)
        service.counter_check()
        print(_summary(service, decisions))
        if tracer is not None:
            dump = pathlib.Path(args.log_dir) / "flightrec.jsonl"
            written = tracer.dump_jsonl(dump)
            print(f"flight recorder: wrote {written} event(s) to {dump}")
        if exporter is not None:
            exporter.export()  # final snapshot, even off-cadence
        _write_manifest(args, service, registry, "run",
                        time.perf_counter() - started)
        return _exit_code(service)


def _cmd_replay(args: argparse.Namespace) -> int:
    registry = _telemetry_registry(args)
    started = time.perf_counter()
    service = replay_event_log(args.log_dir, telemetry=registry)
    _, events = read_event_log(args.log_dir)
    mismatches = [i for i in service.incidents if i.kind == "replay-mismatch"]
    print(f"replayed {len(events)} event(s): "
          f"{len(mismatches)} mismatch(es), "
          f"{service.class_count} class(es) admitted")
    _write_manifest(args, service, registry, "replay",
                    time.perf_counter() - started)
    return _exit_code(service)


def _cmd_verify(args: argparse.Namespace) -> int:
    registry = _telemetry_registry(args)
    started = time.perf_counter()
    config, events = read_event_log(args.log_dir)
    service = replay_event_log(args.log_dir, telemetry=registry,
                               executor=_make_executor(args))
    # Periodic oracle checks over prefixes of the log, then one full
    # counter-check (oracle + simulation) on the final admitted set.
    for upto in range(args.check_every, len(events), args.check_every):
        prefix = replay_event_log(args.log_dir, upto=upto)
        prefix.executor = None
        prefix.counter_check()
        service.incidents.extend(prefix.incidents)
    service.counter_check()
    print(f"verified {len(events)} event(s): "
          f"{len(service.incidents)} incident(s), "
          f"{service.class_count} class(es) admitted")
    _write_manifest(args, service, registry, "verify",
                    time.perf_counter() - started)
    return _exit_code(service)


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "jobs", 1) < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    handlers = {
        "trace": _cmd_trace,
        "run": _cmd_run,
        "replay": _cmd_replay,
        "verify": _cmd_verify,
    }
    return handlers[args.command](args)
