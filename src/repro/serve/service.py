"""The admission-control service: streaming FC decisions with an oracle.

:class:`AdmissionService` wraps an incremental
:class:`~repro.core.feas_engine.FeasibilityEngine` and answers a stream
of :class:`~repro.serve.model.Request` events:

* ``join``/``rescale`` mutate the engine *tentatively* — the class (or
  its new bound) is applied through the O(C) delta path, the FC report
  is consulted, and an infeasible outcome is rolled back exactly
  (``rescale_class`` with the saved ``(a, w, w0)`` triple), so a reject
  leaves the engine bit-identical to before the request;
* ``leave`` retires a class; ``reconfigure`` applies a global density
  rescale and evicts the most recently admitted classes (LIFO) until the
  surviving set is feasible again.

Every decision is a pure function of the request stream (see
:mod:`repro.serve.model`), persisted as JSONL: ``events.jsonl`` (one
header line with the service config, then one line per request+decision
pair) and ``decisions.jsonl`` (raw decision lines — the byte-identity
artifact replay is compared against).

Counter-checking: :meth:`AdmissionService.counter_check` re-derives the
admitted set's feasibility two independent ways — the scalar
``check_feasibility`` oracle on a materialised
:class:`~repro.model.problem.HRTDMProblem` (digest-compared per report
row against the engine's), and, when an executor is attached, a
``SERVE-CHECK`` simulation spec resolved through the cache-aware sweep
executor.  Divergence is recorded as a structured
:class:`~repro.serve.model.Incident`, never an exception: the service
keeps serving and the operator (or CI) inspects ``incidents``.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import pickle
import time
import typing

from repro.core.feas_engine import FeasibilityEngine
from repro.core.feasibility import TreeParameters, check_feasibility
from repro.model.message import DensityBound, MessageClass
from repro.net.phy import (
    ATM_BUS,
    CLASSIC_ETHERNET,
    GIGABIT_ETHERNET,
    MediumProfile,
)
from repro.obs.context import use_tracer
from repro.obs.export import iter_jsonl_tail
from repro.obs.instruments import DECISION_LATENCY_EDGES, NULL_TELEMETRY
from repro.obs.tracer import NULL_TRACER
from repro.serve.model import Decision, Incident, Request

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.export import StreamExporter
    from repro.obs.slo import SloEngine
    from repro.obs.tracer import FlightRecorder
    from repro.runtime.executor import ParallelExecutor
    from repro.runtime.spec import RunSpec

__all__ = [
    "AdmissionService",
    "MEDIA",
    "ServeConfig",
    "read_event_log",
    "read_incidents",
    "replay_event_log",
]

#: Media the service config can name (the same set ``tools.check`` uses).
MEDIA: dict[str, MediumProfile] = {
    profile.name: profile
    for profile in (GIGABIT_ETHERNET, CLASSIC_ETHERNET, ATM_BUS)
}

#: Event-log schema version (bump on incompatible layout changes).
LOG_SCHEMA = 1

EVENTS_FILE = "events.jsonl"
DECISIONS_FILE = "decisions.jsonl"
INCIDENTS_FILE = "incidents.jsonl"
BLACKBOX_FILE = "blackbox.jsonl"

#: How many flight-recorder events an incident's black-box snapshot keeps.
BLACKBOX_EVENTS = 64


class ServeConfig(typing.NamedTuple):
    """Deterministic service parameters (everything replay needs).

    ``check_every`` is the counter-check cadence in handled requests
    (0 disables periodic checks; explicit :meth:`~AdmissionService.
    counter_check` calls always work).  ``sim_horizon``/``sim_seed``
    parameterise the background SERVE-CHECK simulation.
    """

    static_q: int = 256
    static_m: int = 2
    time_f: int = 64
    time_m: int = 4
    medium: str = GIGABIT_ETHERNET.name
    check_every: int = 0
    sim_horizon: int = 4_000_000
    sim_seed: int = 0

    def trees(self) -> TreeParameters:
        return TreeParameters(
            time_f=self.time_f,
            time_m=self.time_m,
            static_q=self.static_q,
            static_m=self.static_m,
        )

    def medium_profile(self) -> MediumProfile:
        try:
            return MEDIA[self.medium]
        except KeyError:
            raise ValueError(
                f"unknown medium {self.medium!r} "
                f"(known: {', '.join(sorted(MEDIA))})"
            ) from None

    def to_dict(self) -> dict[str, object]:
        return dict(self._asdict())

    @classmethod
    def from_dict(cls, doc: dict[str, object]) -> "ServeConfig":
        return cls(**doc)  # type: ignore[arg-type]


class AdmissionService:
    """Streaming admit/reject over an incremental feasibility engine."""

    def __init__(
        self,
        config: ServeConfig | None = None,
        *,
        backend=None,
        telemetry=None,
        executor: "ParallelExecutor | None" = None,
        log_dir: "str | pathlib.Path | None" = None,
        tracer: "FlightRecorder | None" = None,
        exporter: "StreamExporter | None" = None,
        slos: "SloEngine | None" = None,
    ) -> None:
        """``tracer``/``exporter``/``slos`` arm the v2 ops plane:

        * ``tracer`` — a :class:`~repro.obs.tracer.FlightRecorder`; each
          request becomes a ``serve/request`` trace root whose children
          span engine mutations, speculative rollbacks and (for
          counter-checks) the SERVE-CHECK simulation's slot outcomes.
          Incidents get a black-box snapshot of the recorder's last
          events attached.  Default: the disabled ``NULL_TRACER``.
        * ``exporter`` — a :class:`~repro.obs.export.StreamExporter`
          ticked once per handled request.
        * ``slos`` — a :class:`~repro.obs.slo.SloEngine` evaluated once
          per handled request; a burn-rate breach lands as a structured
          ``slo-breach`` incident, never an exception.
        """
        self.config = config if config is not None else ServeConfig()
        # Validate eagerly: a bad medium/tree shape must fail at
        # construction, not at the first decision.
        medium = self.config.medium_profile()
        trees = self.config.trees()
        self.engine = FeasibilityEngine(medium, trees, backend=backend)
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.executor = executor
        self.tracer = tracer if tracer is not None else NULL_TRACER
        # Arm the engine's (layering-safe, plain-attribute) tracer hook
        # only when recording — core code checks `is not None` per call.
        self.engine.tracer = self.tracer if self.tracer.enabled else None
        self.exporter = exporter
        self.slos = slos
        self.incidents: list[Incident] = []
        #: (source_id, name) in admission order — the reconfigure
        #: eviction policy pops from the tail (LIFO).
        self._admission_order: list[tuple[int, str]] = []
        #: Globally unique class names (an HRTDM model constraint the
        #: engine alone does not enforce across sources).
        self._names: set[str] = set()
        self._last_seq = -1
        self.handled = 0
        self._log_dir: pathlib.Path | None = None
        self._events_handle = None
        self._decisions_handle = None
        if log_dir is not None:
            self.attach_log_dir(log_dir)

    # -- log plumbing ------------------------------------------------------

    def attach_log_dir(self, log_dir: "str | pathlib.Path") -> None:
        """Append subsequent events to ``log_dir``'s JSONL logs.

        A fresh ``events.jsonl`` gets a header line carrying the service
        config, so the log is self-describing and replay needs no side
        channel.
        """
        self._log_dir = pathlib.Path(log_dir)
        self._log_dir.mkdir(parents=True, exist_ok=True)
        events = self._log_dir / EVENTS_FILE
        fresh = not events.exists() or events.stat().st_size == 0
        self._events_handle = open(events, "a", encoding="utf-8")
        self._decisions_handle = open(
            self._log_dir / DECISIONS_FILE, "a", encoding="utf-8"
        )
        if fresh:
            header = {
                "kind": "header",
                "schema": LOG_SCHEMA,
                "config": self.config.to_dict(),
            }
            self._events_handle.write(
                json.dumps(header, sort_keys=True, separators=(",", ":"))
                + "\n"
            )
            self._events_handle.flush()

    def close(self) -> None:
        for handle in (self._events_handle, self._decisions_handle):
            if handle is not None:
                handle.close()
        self._events_handle = None
        self._decisions_handle = None

    def __enter__(self) -> "AdmissionService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _log(self, request: Request, decision: Decision) -> None:
        if self._events_handle is not None:
            event = {
                "kind": "event",
                "request": request.to_dict(),
                "decision": decision.to_dict(),
            }
            self._events_handle.write(
                json.dumps(event, sort_keys=True, separators=(",", ":"))
                + "\n"
            )
            self._events_handle.flush()
        if self._decisions_handle is not None:
            self._decisions_handle.write(decision.to_json() + "\n")
            self._decisions_handle.flush()

    def _record_incident(self, incident: Incident) -> None:
        tracer = self.tracer
        if tracer.enabled:
            # Mark the moment inside the trace, then freeze the black
            # box: the recorder's last events (including the marker) ride
            # along on the incident and are dumped beside the logs.
            tracer.emit(
                "serve/incident", kind=incident.kind, at_seq=incident.at_seq
            )
            incident = dataclasses.replace(
                incident,
                trace=tuple(
                    event.to_dict()
                    for event in tracer.last(BLACKBOX_EVENTS)
                ),
            )
            if self._log_dir is not None:
                tracer.dump_jsonl(self._log_dir / BLACKBOX_FILE)
        self.incidents.append(incident)
        self.telemetry.counter("serve/incidents").inc()
        if self._log_dir is not None:
            with open(
                self._log_dir / INCIDENTS_FILE, "a", encoding="utf-8"
            ) as handle:
                handle.write(incident.to_json() + "\n")
                handle.flush()

    # -- introspection -----------------------------------------------------

    @property
    def class_count(self) -> int:
        return self.engine.class_count

    @property
    def admitted(self) -> tuple[tuple[int, str], ...]:
        """(source_id, name) pairs in admission order."""
        return tuple(self._admission_order)

    def frozen_classes(self) -> tuple[tuple, ...]:
        """The admitted set as spec-safe nested tuples.

        Shape: ``((source_id, nu, name, length, deadline, a, w), ...)``
        in engine (report) order — the ``classes`` parameter of the
        SERVE-CHECK experiment.
        """
        _, sources = self.engine.snapshot()
        return tuple(
            (source_id, nu, name, length, deadline, a, w)
            for source_id, nu, classes in sources
            for name, length, deadline, a, w, _w0 in classes
        )

    # -- the decision loop -------------------------------------------------

    def _dispatch(self, request: Request) -> Decision:
        """Route one request to its per-kind decision procedure."""
        if request.seq <= self._last_seq:
            return self._decide_error(
                request,
                f"out-of-order seq {request.seq} (last {self._last_seq})",
            )
        handler = {
            "join": self._decide_join,
            "leave": self._decide_leave,
            "rescale": self._decide_rescale,
            "reconfigure": self._decide_reconfigure,
        }[request.kind]
        decision = handler(request)
        self._last_seq = request.seq
        return decision

    def handle(self, request: Request) -> Decision:
        """Decide one request; logs, counts and (periodically) checks."""
        enabled = self.telemetry.enabled
        started = time.perf_counter() if enabled else 0.0
        tracer = self.tracer
        if tracer.enabled:
            # The request becomes a trace root: engine mutations,
            # rollbacks and counter-check slots parent under this span.
            with tracer.span(
                "serve/request", seq=request.seq, kind=request.kind
            ):
                decision = self._dispatch(request)
                tracer.emit(
                    "serve/decision",
                    seq=decision.seq,
                    verdict=decision.verdict,
                    classes=decision.class_count,
                )
        else:
            decision = self._dispatch(request)
        self.handled += 1
        if enabled:
            elapsed_us = (time.perf_counter() - started) * 1e6
            self.telemetry.histogram(
                "serve/decision_latency_us", DECISION_LATENCY_EDGES
            ).record(elapsed_us)
            self.telemetry.counter("serve/requests").inc()
            self.telemetry.counter(f"serve/{decision.verdict}").inc()
            if decision.evicted:
                self.telemetry.counter("serve/evict").inc(
                    len(decision.evicted)
                )
        self._log(request, decision)
        if (
            self.config.check_every > 0
            and self.handled % self.config.check_every == 0
        ):
            self.counter_check()
        if self.slos is not None:
            for breach in self.slos.tick(self.telemetry):
                self._record_incident(
                    Incident(
                        kind="slo-breach",
                        at_seq=self._last_seq,
                        detail=breach.describe(),
                    )
                )
        if self.exporter is not None:
            self.exporter.tick()
        return decision

    def run_trace(self, requests: typing.Iterable[Request]) -> list[Decision]:
        return [self.handle(request) for request in requests]

    # -- per-kind decisions ------------------------------------------------

    def _finish(
        self,
        request: Request,
        verdict: str,
        reason: str | None = None,
        evicted: tuple[tuple[int, str], ...] = (),
    ) -> Decision:
        count = self.engine.class_count
        slack = self.engine.report().worst.slack if count else None
        return Decision(
            seq=request.seq,
            kind=request.kind,
            verdict=verdict,
            reason=reason,
            source_id=request.source_id,
            name=request.name,
            class_count=count,
            total_nu=self.engine.total_nu,
            scale=self.engine.scale,
            slack=slack,
            evicted=evicted,
        )

    def _decide_error(self, request: Request, reason: str) -> Decision:
        return self._finish(request, "error", reason)

    def _decide_join(self, request: Request) -> Decision:
        missing = [
            field
            for field in ("source_id", "name", "length", "deadline", "a", "w")
            if getattr(request, field) is None
        ]
        if missing:
            return self._decide_error(
                request, f"join needs {', '.join(missing)}"
            )
        if request.name in self._names:
            return self._decide_error(
                request, f"class name {request.name!r} already admitted"
            )
        try:
            message = MessageClass(
                name=request.name,
                length=request.length,
                deadline=request.deadline,
                bound=DensityBound(a=request.a, w=request.w),
            )
        except ValueError as error:
            return self._decide_error(request, str(error))
        if self.engine.source_nu(request.source_id) is None:
            needed = request.nu
            if needed is None or needed < 1:
                return self._decide_error(
                    request,
                    f"new source {request.source_id} needs nu >= 1",
                )
            if self.engine.total_nu + needed > self.config.static_q:
                return self._finish(
                    request,
                    "reject",
                    f"capacity: {self.engine.total_nu}+{needed} static "
                    f"leaves exceed q={self.config.static_q}",
                )
        try:
            self.engine.add_class(request.source_id, message, nu=request.nu)
        except ValueError as error:
            return self._decide_error(request, str(error))
        report = self.engine.report()
        if report.feasible:
            self._names.add(request.name)
            self._admission_order.append((request.source_id, request.name))
            return self._finish(request, "admit")
        worst = report.worst
        if self.tracer.enabled:
            self.tracer.emit(
                "serve/rollback", seq=request.seq, kind="join",
                name=request.name,
            )
        self.engine.remove_class(request.source_id, request.name)
        return self._finish(
            request,
            "reject",
            f"infeasible: B_DDCR exceeds deadline for "
            f"{worst.class_name} (slack {worst.slack})",
        )

    def _decide_leave(self, request: Request) -> Decision:
        if request.source_id is None or request.name is None:
            return self._decide_error(request, "leave needs source_id, name")
        try:
            self.engine.remove_class(request.source_id, request.name)
        except KeyError as error:
            return self._decide_error(request, str(error.args[0]))
        self._names.discard(request.name)
        self._admission_order.remove((request.source_id, request.name))
        return self._finish(request, "ok")

    def _decide_rescale(self, request: Request) -> Decision:
        if request.source_id is None or request.name is None:
            return self._decide_error(
                request, "rescale needs source_id, name"
            )
        if request.a is None and request.w is None:
            return self._decide_error(request, "rescale needs a and/or w")
        try:
            old_a, old_w, old_w0 = self.engine.class_state(
                request.source_id, request.name
            )
        except KeyError as error:
            return self._decide_error(request, str(error.args[0]))
        try:
            self.engine.rescale_class(
                request.source_id, request.name, a=request.a, w=request.w
            )
        except ValueError as error:
            return self._decide_error(request, str(error))
        if self.engine.report().feasible:
            return self._finish(request, "admit")
        worst = self.engine.report().worst
        if self.tracer.enabled:
            self.tracer.emit(
                "serve/rollback", seq=request.seq, kind="rescale",
                name=request.name,
            )
        # Exact rollback: effective bound and rebase base both restored.
        self.engine.rescale_class(
            request.source_id, request.name, a=old_a, w=old_w, w0=old_w0
        )
        return self._finish(
            request,
            "reject",
            f"infeasible: B_DDCR exceeds deadline for "
            f"{worst.class_name} (slack {worst.slack})",
        )

    def _decide_reconfigure(self, request: Request) -> Decision:
        if request.scale is None or request.scale <= 0:
            return self._decide_error(
                request, f"reconfigure needs scale > 0, got {request.scale}"
            )
        self.engine.rescale_density(request.scale)
        evicted: list[tuple[int, str]] = []
        while self._admission_order and not self.engine.report().feasible:
            source_id, name = self._admission_order.pop()
            self.engine.remove_class(source_id, name)
            self._names.discard(name)
            evicted.append((source_id, name))
        return self._finish(request, "ok", evicted=tuple(evicted))

    # -- counter-checking --------------------------------------------------

    def sim_spec(self) -> "RunSpec":
        """The SERVE-CHECK spec for the current admitted set."""
        from repro.runtime.spec import RunSpec

        return RunSpec.make(
            "SERVE-CHECK",
            root_seed=self.config.sim_seed,
            classes=self.frozen_classes(),
            static_q=self.config.static_q,
            static_m=self.config.static_m,
            time_f=self.config.time_f,
            time_m=self.config.time_m,
            medium=self.config.medium,
            horizon=self.config.sim_horizon,
        )

    def counter_check(self) -> list[Incident]:
        """Re-derive the admitted set's feasibility independently.

        Always runs the scalar oracle (materialise the engine state as an
        :class:`HRTDMProblem`, ``check_feasibility``, digest-compare
        every report row); runs the SERVE-CHECK simulation through the
        attached executor when one is present.  Returns the incidents
        *this* check raised (also appended to :attr:`incidents`).
        """
        self.telemetry.counter("serve/checks").inc()
        raised: list[Incident] = []
        if self.engine.class_count:
            oracle = check_feasibility(
                self.engine.to_problem(),
                self.config.medium_profile(),
                self.config.trees(),
            )
            mine = self.engine.report()
            # Row-by-row pickles: a whole-report pickle memoizes shared
            # strings differently across construction paths.
            mismatches = [
                row.class_name
                for row, expected in zip(mine.classes, oracle.classes)
                if pickle.dumps(row) != pickle.dumps(expected)
            ]
            if len(mine.classes) != len(oracle.classes) or mismatches:
                raised.append(
                    Incident(
                        kind="oracle-divergence",
                        at_seq=self._last_seq,
                        detail=(
                            f"engine report differs from scalar oracle on "
                            f"{len(mismatches)}/{len(oracle.classes)} "
                            f"class(es): {', '.join(mismatches[:5])}"
                        ),
                    )
                )
            if self.executor is not None:
                tracer = self.tracer
                if tracer.enabled:
                    # Scope the recorder ambiently: the SERVE-CHECK
                    # channel picks it up at construction, so its slot
                    # outcomes parent under this check's span (serial
                    # executor; pool workers record in-process only).
                    with tracer.span(
                        "serve/counter_check", at_seq=self._last_seq
                    ), use_tracer(tracer):
                        records = self.executor.run([self.sim_spec()])
                else:
                    records = self.executor.run([self.sim_spec()])
                result = records[0].result
                if not result.all_checks_pass:
                    raised.append(
                        Incident(
                            kind="sim-check-failed",
                            at_seq=self._last_seq,
                            detail=(
                                "SERVE-CHECK simulation failed: "
                                + ", ".join(result.failed_checks())
                            ),
                        )
                    )
        for incident in raised:
            self._record_incident(incident)
        return raised


# -- replay / resume --------------------------------------------------------


def read_event_log(
    log_dir: "str | pathlib.Path",
) -> tuple[ServeConfig, list[tuple[Request, Decision]]]:
    """Parse ``events.jsonl``: the header config plus all event pairs."""
    path = pathlib.Path(log_dir) / EVENTS_FILE
    config: ServeConfig | None = None
    events: list[tuple[Request, Decision]] = []
    with open(path, encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            doc = json.loads(line)
            kind = doc.get("kind")
            if kind == "header":
                if doc.get("schema") != LOG_SCHEMA:
                    raise ValueError(
                        f"{path}:{line_no}: unsupported log schema "
                        f"{doc.get('schema')!r}"
                    )
                config = ServeConfig.from_dict(doc["config"])
            elif kind == "event":
                events.append(
                    (
                        Request.from_dict(doc["request"]),
                        Decision.from_dict(doc["decision"]),
                    )
                )
            else:
                raise ValueError(
                    f"{path}:{line_no}: unknown log line kind {kind!r}"
                )
    if config is None:
        raise ValueError(f"{path}: no header line")
    return config, events


def read_incidents(log_dir: "str | pathlib.Path") -> list[Incident]:
    """Parse ``incidents.jsonl``, tolerating a truncated final line.

    The incident journal is append-per-event with a flush after each
    line, so a crash mid-write can only ever leave the *last* line
    incomplete — :func:`~repro.obs.export.iter_jsonl_tail` skips exactly
    that case and still raises on interior corruption.  A missing file
    means no incidents.
    """
    path = pathlib.Path(log_dir) / INCIDENTS_FILE
    return [Incident.from_dict(doc) for doc in iter_jsonl_tail(path)]


def replay_event_log(
    log_dir: "str | pathlib.Path",
    *,
    backend=None,
    telemetry=None,
    executor: "ParallelExecutor | None" = None,
    upto: int | None = None,
    attach: bool = False,
    tracer: "FlightRecorder | None" = None,
    slos: "SloEngine | None" = None,
) -> AdmissionService:
    """Rebuild a service by re-deciding the logged requests.

    Every recomputed decision is byte-compared against the logged one; a
    difference becomes a ``replay-mismatch`` incident (determinism is a
    *checked* property, not an assumption).  ``upto`` replays only the
    first N events — the mid-trace resume path; ``attach`` re-opens the
    log files for appending so the resumed service continues the same
    run.  Periodic counter-checks are suppressed during replay (the
    decisions are already being verified against the log).
    """
    config, events = read_event_log(log_dir)
    service = AdmissionService(
        # check_every=0 during replay; restored before handing back.
        config._replace(check_every=0),
        backend=backend,
        telemetry=telemetry,
        executor=executor,
        tracer=tracer,
        slos=slos,
    )
    if upto is not None:
        events = events[:upto]
    for request, logged in events:
        recomputed = service.handle(request)
        if recomputed.to_json() != logged.to_json():
            service._record_incident(
                Incident(
                    kind="replay-mismatch",
                    at_seq=request.seq,
                    detail=(
                        f"replayed decision differs at seq {request.seq}: "
                        f"{recomputed.to_json()} != {logged.to_json()}"
                    ),
                )
            )
    service.config = config
    if attach:
        service.attach_log_dir(log_dir)
    return service
