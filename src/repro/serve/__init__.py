"""Long-running admission control over the incremental feasibility engine.

The serve layer turns the repo's batch-oriented FC machinery into a
*service*: a stream of join/leave/rescale/reconfigure requests answered
admit/reject from incrementally updated B_DDCR bounds, with the decision
log persisted for deterministic replay and the admitted set periodically
counter-checked by the scalar oracle and a background CSMA/DDCR
simulation (the ``SERVE-CHECK`` experiment, resolved through the normal
cache-aware executor).

``python -m repro.serve`` is the operator CLI (trace / run / replay /
verify).  Importing this package also registers the ``serve-traces``
sweep campaign.
"""

from repro.serve import traces as _traces  # noqa: F401 - campaign registration
from repro.serve.model import Decision, Incident, Request
from repro.serve.service import (
    MEDIA,
    AdmissionService,
    ServeConfig,
    read_event_log,
    replay_event_log,
)
from repro.serve.traces import TEMPLATES, TraceConfig, generate_trace

__all__ = [
    "AdmissionService",
    "Decision",
    "Incident",
    "MEDIA",
    "Request",
    "ServeConfig",
    "TEMPLATES",
    "TraceConfig",
    "generate_trace",
    "read_event_log",
    "replay_event_log",
]
