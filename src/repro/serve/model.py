"""Typed request/decision model for the admission-control service.

The service speaks four request kinds over message classes:

* ``join`` — a source asks to admit one new message class;
* ``leave`` — a source retires one of its admitted classes;
* ``rescale`` — a source renegotiates one class's arrival bound (a, w);
* ``reconfigure`` — the operator rescales every class's arrival density
  (the workload factories' ``scale`` knob), evicting the most recently
  admitted classes until the surviving set is feasible again.

Determinism contract: a :class:`Decision` is a pure function of the
request stream — it carries **no wall-clock fields** (decision latency is
telemetry, not content), floats serialise through :func:`json.dumps`'s
shortest-repr, and :meth:`Decision.to_json` emits compact sorted-key
JSON.  Replaying the same trace therefore produces a byte-identical
decision log, which the differential replay tests and the ``check --ci``
serve-smoke compare directly.
"""

from __future__ import annotations

import dataclasses
import json

__all__ = [
    "Decision",
    "Incident",
    "Request",
    "REQUEST_KINDS",
    "VERDICTS",
]

#: Legal request kinds, in documentation order.
REQUEST_KINDS = ("join", "leave", "rescale", "reconfigure")

#: Legal decision verdicts: ``admit``/``reject`` answer a join or
#: rescale, ``ok`` acknowledges a leave or reconfigure, ``error`` flags a
#: malformed or inapplicable request (unknown class, duplicate name...).
VERDICTS = ("admit", "reject", "ok", "error")


@dataclasses.dataclass(frozen=True, slots=True)
class Request:
    """One event of the admission trace.

    Field applicability by kind: ``join`` uses source_id/name/nu/length/
    deadline/a/w; ``leave`` uses source_id/name; ``rescale`` uses
    source_id/name/a/w (either may be None to keep the current value);
    ``reconfigure`` uses scale.  Unused fields stay ``None`` and are
    dropped from the JSON form.
    """

    seq: int
    kind: str
    source_id: int | None = None
    name: str | None = None
    nu: int | None = None
    length: int | None = None
    deadline: int | None = None
    a: int | None = None
    w: int | None = None
    scale: float | None = None

    def __post_init__(self) -> None:
        if self.seq < 0:
            raise ValueError(f"seq must be >= 0, got {self.seq}")
        if self.kind not in REQUEST_KINDS:
            raise ValueError(
                f"kind must be one of {REQUEST_KINDS}, got {self.kind!r}"
            )

    def to_dict(self) -> dict[str, object]:
        """JSON-ready form with unused (None) fields dropped."""
        return {
            key: value
            for key, value in dataclasses.asdict(self).items()
            if value is not None
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_dict(cls, doc: dict[str, object]) -> "Request":
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = set(doc) - known
        if unknown:
            raise ValueError(f"unknown request field(s): {sorted(unknown)}")
        return cls(**doc)  # type: ignore[arg-type]


@dataclasses.dataclass(frozen=True, slots=True)
class Decision:
    """The service's answer to one request — deterministic content only.

    ``class_count``/``total_nu``/``scale``/``slack`` describe the
    admitted set *after* the decision took effect (a reject leaves them
    at the pre-request values); ``slack`` is the binding class's
    deadline-minus-bound, ``None`` when no classes are admitted.
    ``evicted`` lists ``(source_id, name)`` pairs a reconfigure had to
    drop, newest first.
    """

    seq: int
    kind: str
    verdict: str
    reason: str | None = None
    source_id: int | None = None
    name: str | None = None
    class_count: int = 0
    total_nu: int = 0
    scale: float = 1.0
    slack: float | None = None
    evicted: tuple[tuple[int, str], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in REQUEST_KINDS:
            raise ValueError(
                f"kind must be one of {REQUEST_KINDS}, got {self.kind!r}"
            )
        if self.verdict not in VERDICTS:
            raise ValueError(
                f"verdict must be one of {VERDICTS}, got {self.verdict!r}"
            )

    @property
    def applied(self) -> bool:
        """Whether the request mutated the admitted set."""
        return self.verdict in ("admit", "ok")

    def to_dict(self) -> dict[str, object]:
        doc: dict[str, object] = {
            "seq": self.seq,
            "kind": self.kind,
            "verdict": self.verdict,
            "class_count": self.class_count,
            "total_nu": self.total_nu,
            "scale": self.scale,
        }
        if self.reason is not None:
            doc["reason"] = self.reason
        if self.source_id is not None:
            doc["source_id"] = self.source_id
        if self.name is not None:
            doc["name"] = self.name
        if self.slack is not None:
            doc["slack"] = self.slack
        if self.evicted:
            doc["evicted"] = [list(pair) for pair in self.evicted]
        return doc

    def to_json(self) -> str:
        """Compact sorted-key JSON: the byte-identity unit of the log."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_dict(cls, doc: dict[str, object]) -> "Decision":
        doc = dict(doc)
        evicted = doc.pop("evicted", [])
        return cls(
            evicted=tuple((int(sid), str(name)) for sid, name in evicted),
            **doc,  # type: ignore[arg-type]
        )


@dataclasses.dataclass(frozen=True, slots=True)
class Incident:
    """A counter-check divergence or replay mismatch, as structured data.

    ``kind`` is one of ``oracle-divergence`` (engine report != scalar
    ``check_feasibility`` on the materialised class set),
    ``sim-check-failed`` (the background SERVE-CHECK simulation's checks
    failed on an admitted-as-feasible set), ``replay-mismatch`` (a
    replayed decision differs from the logged one) or ``slo-breach``
    (a declarative objective's burn rate crossed its multi-window
    threshold, :mod:`repro.obs.slo`).  ``at_seq`` is the last decision
    applied when the check ran.

    ``trace`` is the optional black-box snapshot: the flight recorder's
    last events at the moment the incident landed, as JSON-ready event
    dicts (:meth:`repro.obs.tracer.TraceEvent.to_dict`).  It is attached
    only when a recorder was armed and omitted from the JSON form when
    absent, so incident streams from untraced runs are unchanged.
    """

    kind: str
    at_seq: int
    detail: str
    trace: tuple[dict, ...] | None = None

    def to_dict(self) -> dict[str, object]:
        doc: dict[str, object] = {"kind": self.kind, "at_seq": self.at_seq,
                                  "detail": self.detail}
        if self.trace is not None:
            doc["trace"] = [dict(event) for event in self.trace]
        return doc

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_dict(cls, doc: dict[str, object]) -> "Incident":
        trace = doc.get("trace")
        return cls(
            kind=str(doc["kind"]),
            at_seq=int(doc["at_seq"]),  # type: ignore[arg-type]
            detail=str(doc["detail"]),
            trace=(
                tuple(dict(event) for event in trace)  # type: ignore[union-attr]
                if trace is not None
                else None
            ),
        )
