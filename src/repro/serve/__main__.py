"""Module entry point: ``python -m repro.serve``."""

import sys

from repro.serve.cli import main

if __name__ == "__main__":
    sys.exit(main())
