"""Incremental feasibility evaluation under class add/remove/rescale.

An admission-control loop (ROADMAP item 5) and a frontier bisection both
ask the same question over and over: *is this instance still feasible
after a small change?*  Rebuilding a scalar
:class:`~repro.core.feasibility.FeasibilityReport` costs O(C^2) per
probe; this module maintains the FC integer state and applies deltas.

The interference sum decomposes per contributor::

    u(M_i) = sum_j f(i, j),   f(i, j) = ceil((d_i + d_j - l'_i) / w_j) * a_j
                                        (0 when the window span is <= 0)

so adding, removing or rescaling one class k only changes the k-th
contributor column: every existing ``u_i`` (and the matching transmission
sum, weighted by ``l'_j``) moves by ``f(i, k)`` — an O(C) update — and
only the mutated class needs a fresh O(C) row.  Ranks ``r(M)`` involve a
single source's classes, so a mutation touches one source block.  A
global density rescale invalidates every window and falls back to the
vectorized bulk recompute from :mod:`repro.core.feas_grid`.

Reports are exactly equal to the scalar path's: the engine keeps only
exact integers and hands them to the shared
:meth:`~repro.core.feas_grid.BatchEvaluator.assemble_rows` float combine.
"""

from __future__ import annotations

import math
import typing

from repro.core.feas_grid import BatchEvaluator
from repro.core.feasibility import FeasibilityReport, TreeParameters
from repro.model.message import MessageClass
from repro.model.problem import HRTDMProblem

if typing.TYPE_CHECKING:  # pragma: no cover - layering: core must not pull net
    from repro.net.phy import MediumProfile

__all__ = ["FeasibilityEngine"]


class _ClassState:
    """One message class's exact integer FC state."""

    __slots__ = ("name", "length", "deadline", "lp", "a", "w", "w0",
                 "rank", "u", "tx")

    def __init__(self, name, length, deadline, lp, a, w):
        self.name = name
        self.length = length
        self.deadline = deadline
        self.lp = lp
        self.a = a
        self.w = w
        #: scale-1.0 base window; ``rescale_density`` derives ``w`` from it
        #: and explicit per-class rescales rebase it.
        self.w0 = w
        self.rank = 0
        self.u = 0
        self.tx = 0


class _SourceState:
    __slots__ = ("source_id", "nu", "classes")

    def __init__(self, source_id: int, nu: int):
        self.source_id = source_id
        self.nu = nu
        self.classes: list[_ClassState] = []

    def find(self, name: str) -> _ClassState | None:
        for cls in self.classes:
            if cls.name == name:
                return cls
        return None


def _interference_term(target: _ClassState, contrib: _ClassState) -> int:
    """``f(i, j)``: contributor j's share of ``u(M_i)``."""
    span = target.deadline + contrib.deadline - target.lp
    if span <= 0:
        return 0
    return -(-span // contrib.w) * contrib.a


def _rank_term(deadline: int, contrib: _ClassState) -> int:
    """Contributor j's share of ``r(M_i)`` (same-source classes only)."""
    return -(-deadline // contrib.w) * contrib.a


class FeasibilityEngine:
    """FC state machine over a mutable set of message classes.

    Mutations (:meth:`add_class`, :meth:`remove_class`,
    :meth:`rescale_class`) cost O(C) exact-integer work instead of the
    O(C^2) of a fresh scalar report; :meth:`rescale_density` revalidates
    everything through the vectorized backend.  :meth:`report` is lazy
    and cached between mutations, and always equals scalar
    ``check_feasibility`` on the equivalent instance.

    Ordering contract (it shapes the report's row order): sources keep
    first-seen order and classes keep insertion order within a source; a
    source whose last class is removed is dropped, and re-adding to that
    ``source_id`` later appends it as a new, last source.
    """

    def __init__(
        self,
        medium: "MediumProfile",
        trees: TreeParameters,
        backend=None,
        evaluator: BatchEvaluator | None = None,
    ) -> None:
        # Sharing one evaluator across engines shares its encapsulation
        # and S1 memos (it must be bound to the same medium/trees).
        self.evaluator = (
            evaluator
            if evaluator is not None
            else BatchEvaluator(medium, trees, backend=backend)
        )
        self._sources: list[_SourceState] = []
        self._report: FeasibilityReport | None = None
        self._scale = 1.0
        #: Optional flight recorder (:class:`repro.obs.tracer.FlightRecorder`)
        #: mutations emit structured events into; ``None`` (the default)
        #: costs one attribute read per mutation.  Held as a plain
        #: attribute rather than a constructor kwarg so the core layer
        #: never imports :mod:`repro.obs` — the admission service arms it.
        self.tracer = None

    @classmethod
    def from_problem(
        cls,
        problem: HRTDMProblem,
        medium: "MediumProfile",
        trees: TreeParameters,
        backend=None,
        evaluator: BatchEvaluator | None = None,
    ) -> "FeasibilityEngine":
        """Bulk-build the engine state from an instance (vectorized)."""
        engine = cls(medium, trees, backend=backend, evaluator=evaluator)
        for source in problem.sources:
            state = _SourceState(source.source_id, source.nu)
            for msg in source.message_classes:
                state.classes.append(
                    _ClassState(
                        msg.name,
                        msg.length,
                        msg.deadline,
                        engine.evaluator.encapsulate(msg.length),
                        msg.bound.a,
                        msg.bound.w,
                    )
                )
            engine._sources.append(state)
        engine._recompute_all()
        return engine

    # -- introspection -------------------------------------------------------

    @property
    def class_count(self) -> int:
        return sum(len(s.classes) for s in self._sources)

    @property
    def source_count(self) -> int:
        return len(self._sources)

    @property
    def total_nu(self) -> int:
        """Static leaves claimed by the current sources (sum of nu_i)."""
        return sum(s.nu for s in self._sources)

    @property
    def scale(self) -> float:
        """The density scale last applied by :meth:`rescale_density`."""
        return self._scale

    @property
    def feasible(self) -> bool:
        return self.report().feasible

    def source_nu(self, source_id: int) -> int | None:
        """The source's nu, or ``None`` when it holds no classes."""
        source = self._find_source(source_id)
        return None if source is None else source.nu

    def class_state(
        self, source_id: int, class_name: str
    ) -> tuple[int, int, int]:
        """The class's current ``(a, w, w0)`` — enough for an exact undo.

        ``w`` is the effective window, ``w0`` the scale-1.0 base window
        that :meth:`rescale_density` derives it from.  Feeding all three
        back through :meth:`rescale_class` (with its ``w0`` override)
        restores the class bit-for-bit, including its rebase behaviour
        under later density rescales.
        """
        _, state = self._require_class(source_id, class_name)
        return state.a, state.w, state.w0

    def snapshot(self) -> tuple:
        """A picklable, value-only image of the whole engine state.

        Shape: ``(scale, ((source_id, nu, ((name, length, deadline, a, w,
        w0), ...)), ...))`` — everything :meth:`restore` needs, nothing
        derived.  Derived columns (ranks, interference) are *recomputed*
        on restore rather than trusted, so a snapshot can never smuggle a
        corrupted column past the scalar oracle.
        """
        return (
            self._scale,
            tuple(
                (
                    source.source_id,
                    source.nu,
                    tuple(
                        (c.name, c.length, c.deadline, c.a, c.w, c.w0)
                        for c in source.classes
                    ),
                )
                for source in self._sources
            ),
        )

    @classmethod
    def restore(
        cls,
        snapshot: tuple,
        medium: "MediumProfile",
        trees: TreeParameters,
        backend=None,
        evaluator: BatchEvaluator | None = None,
    ) -> "FeasibilityEngine":
        """Rebuild an engine from :meth:`snapshot` output (vectorized).

        The restored engine's :meth:`report` equals the original's
        exactly: source/class ordering is part of the snapshot, and the
        rank/u/tx columns come from the same bulk recompute
        ``from_problem`` uses.
        """
        scale, sources = snapshot
        engine = cls(medium, trees, backend=backend, evaluator=evaluator)
        for source_id, nu, classes in sources:
            state = _SourceState(source_id, nu)
            for name, length, deadline, a, w, w0 in classes:
                cls_state = _ClassState(
                    name,
                    length,
                    deadline,
                    engine.evaluator.encapsulate(length),
                    a,
                    w,
                )
                cls_state.w0 = w0
                state.classes.append(cls_state)
            engine._sources.append(state)
        engine._scale = scale
        engine._recompute_all()
        return engine

    def to_problem(self) -> HRTDMProblem:
        """Materialise the current class set as an :class:`HRTDMProblem`.

        Static indices are assigned contiguously in source order (they
        never enter the FC formulas — only ``nu`` does), so the scalar
        ``check_feasibility`` on the returned problem is the engine's
        oracle.  Requires at least one class, globally unique class
        names, and ``total_nu <= static_q`` (the admission service
        enforces all three before mutating the engine).
        """
        from repro.model.message import DensityBound
        from repro.model.source import SourceSpec

        if not self._sources:
            raise ValueError("cannot materialise an empty engine")
        trees = self.evaluator.trees
        sources = []
        offset = 0
        for source in self._sources:
            sources.append(
                SourceSpec(
                    source_id=source.source_id,
                    message_classes=tuple(
                        MessageClass(
                            name=c.name,
                            length=c.length,
                            deadline=c.deadline,
                            bound=DensityBound(a=c.a, w=c.w),
                        )
                        for c in source.classes
                    ),
                    static_indices=tuple(
                        range(offset, offset + source.nu)
                    ),
                )
            )
            offset += source.nu
        return HRTDMProblem(
            sources=tuple(sources),
            static_q=trees.static_q,
            static_m=trees.static_m,
        )

    def report(self) -> FeasibilityReport:
        """The FC report for the current class set (cached until mutated)."""
        if self._report is None:
            meta = []
            ranks = []
            u = []
            tx = []
            for source in self._sources:
                for cls in source.classes:
                    meta.append(
                        (source.source_id, source.nu, cls.name, cls.deadline)
                    )
                    ranks.append(cls.rank)
                    u.append(cls.u)
                    tx.append(cls.tx)
            self._report = self.evaluator.assemble_rows(meta, ranks, u, tx)
        return self._report

    # -- mutations -----------------------------------------------------------

    def add_class(
        self, source_id: int, message_class: MessageClass, nu: int | None = None
    ) -> None:
        """Admit a class; ``nu`` is required when ``source_id`` is new."""
        source = self._find_source(source_id)
        if source is None:
            if nu is None:
                raise ValueError(
                    f"source {source_id} is new: its nu (static-leaf count) "
                    "is required"
                )
            source = _SourceState(source_id, nu)
            self._sources.append(source)
        elif nu is not None and nu != source.nu:
            raise ValueError(
                f"source {source_id} already has nu={source.nu}, got {nu}"
            )
        if source.find(message_class.name) is not None:
            raise ValueError(
                f"source {source_id} already has a class named "
                f"{message_class.name!r}"
            )
        added = _ClassState(
            message_class.name,
            message_class.length,
            message_class.deadline,
            self.evaluator.encapsulate(message_class.length),
            message_class.bound.a,
            message_class.bound.w,
        )
        # Contributor column: every existing class gains f(i, k).
        for state in self._iter_classes():
            term = _interference_term(state, added)
            state.u += term
            state.tx += term * added.lp
        source.classes.append(added)
        # Fresh row for the newcomer (includes its own contribution).
        for contrib in self._iter_classes():
            term = _interference_term(added, contrib)
            added.u += term
            added.tx += term * contrib.lp
        # Ranks move only within the newcomer's source.
        for state in source.classes[:-1]:
            state.rank += _rank_term(state.deadline, added)
        added.rank = (
            sum(_rank_term(added.deadline, c) for c in source.classes) - 1
        )
        self._report = None
        tracer = self.tracer
        if tracer is not None:
            tracer.emit(
                "engine/add_class",
                source=source_id,
                name=message_class.name,
                classes=self.class_count,
            )

    def remove_class(self, source_id: int, class_name: str) -> MessageClass:
        """Retire a class; drops the source once its last class goes."""
        source, removed = self._require_class(source_id, class_name)
        source.classes.remove(removed)
        for state in self._iter_classes():
            term = _interference_term(state, removed)
            state.u -= term
            state.tx -= term * removed.lp
        for state in source.classes:
            state.rank -= _rank_term(state.deadline, removed)
        if not source.classes:
            self._sources.remove(source)
        self._report = None
        tracer = self.tracer
        if tracer is not None:
            tracer.emit(
                "engine/remove_class",
                source=source_id,
                name=class_name,
                classes=self.class_count,
            )
        return _to_message_class(removed)

    def rescale_class(
        self,
        source_id: int,
        class_name: str,
        a: int | None = None,
        w: int | None = None,
        w0: int | None = None,
    ) -> None:
        """Change one class's arrival bound ``(a, w)`` in place.

        The new window becomes the class's scale-1.0 base for future
        :meth:`rescale_density` calls, unless ``w0`` overrides the base
        explicitly — the exact-undo path: replaying the triple from
        :meth:`class_state` restores both the effective window and its
        rebase behaviour.
        """
        source, target = self._require_class(source_id, class_name)
        new_a = target.a if a is None else a
        new_w = target.w if w is None else w
        if new_a < 1 or new_w < 1:
            raise ValueError(f"need a >= 1 and w >= 1, got a={new_a} w={new_w}")
        new_w0 = new_w if w0 is None else w0
        if new_w0 < 1:
            raise ValueError(f"need w0 >= 1, got w0={new_w0}")
        if (new_a, new_w) == (target.a, target.w):
            target.w0 = new_w0
            return
        old_a, old_w = target.a, target.w
        # The k-th contributor column shifts by f_new - f_old; the target's
        # own deadlines/l' are untouched, so its row needs no other update.
        for state in self._iter_classes():
            span = state.deadline + target.deadline - state.lp
            if span <= 0:
                continue
            delta = (
                -(-span // new_w) * new_a - -(-span // old_w) * old_a
            )
            state.u += delta
            state.tx += delta * target.lp
        for state in source.classes:
            state.rank += (
                -(-state.deadline // new_w) * new_a
                - -(-state.deadline // old_w) * old_a
            )
        target.a = new_a
        target.w = new_w
        target.w0 = new_w0
        self._report = None
        tracer = self.tracer
        if tracer is not None:
            tracer.emit(
                "engine/rescale_class",
                source=source_id,
                name=class_name,
                a=new_a,
                w=new_w,
            )

    def rescale_density(self, scale: float) -> None:
        """Scale every class's arrival density, exactly like the workloads.

        Applies ``w = max(1, ceil(w0 / scale))`` per class — the same
        expression as :func:`repro.model.workloads._scaled_bound` — so an
        engine built from a scale-1.0 workload instance matches the
        workload factory at any scale.  Every window changes, so this
        revalidates through the vectorized backend instead of deltas.
        """
        if scale <= 0:
            raise ValueError(f"scale must be > 0, got {scale}")
        for state in self._iter_classes():
            state.w = max(1, math.ceil(state.w0 / scale))
        self._scale = scale
        self._recompute_all()
        tracer = self.tracer
        if tracer is not None:
            tracer.emit(
                "engine/rescale_density",
                scale=scale,
                classes=self.class_count,
            )

    def max_feasible_density(
        self, lo: float = 0.01, hi: float = 1.0, tolerance: float = 1e-3
    ) -> float:
        """Largest scale in ``[lo, hi]`` keeping the class set feasible.

        Binary search assuming density monotonicity, probing through
        :meth:`rescale_density`; 0.0 when even ``lo`` is infeasible.  The
        engine is left rescaled to ``max(result, lo)`` so :meth:`report`
        describes the returned operating point.
        """
        self.rescale_density(hi)
        if self.feasible:
            return hi
        self.rescale_density(lo)
        if not self.feasible:
            return 0.0
        feasible, infeasible = lo, hi
        while infeasible - feasible > tolerance:
            mid = (feasible + infeasible) / 2
            self.rescale_density(mid)
            if self.feasible:
                feasible = mid
            else:
                infeasible = mid
        if self._scale != feasible:
            self.rescale_density(feasible)
        return feasible

    # -- internals -----------------------------------------------------------

    def _iter_classes(self):
        for source in self._sources:
            yield from source.classes

    def _find_source(self, source_id: int) -> _SourceState | None:
        for source in self._sources:
            if source.source_id == source_id:
                return source
        return None

    def _require_class(
        self, source_id: int, class_name: str
    ) -> tuple[_SourceState, _ClassState]:
        source = self._find_source(source_id)
        if source is None:
            raise KeyError(f"no source {source_id}")
        state = source.find(class_name)
        if state is None:
            raise KeyError(f"source {source_id} has no class {class_name!r}")
        return source, state

    def _recompute_all(self) -> None:
        """Vectorized bulk refresh of every rank/u/tx column."""
        d: list[int] = []
        lp: list[int] = []
        a: list[int] = []
        w: list[int] = []
        blocks: list[tuple[int, int]] = []
        states: list[_ClassState] = []
        for source in self._sources:
            lo = len(d)
            for cls in source.classes:
                d.append(cls.deadline)
                lp.append(cls.lp)
                a.append(cls.a)
                w.append(cls.w)
                states.append(cls)
            blocks.append((lo, len(d)))
        if states:
            ops = self.evaluator.ops
            ranks = ops.ranks(d, a, w, blocks)
            u, tx = ops.interference(d, lp, a, w)
            for state, rank, ui, txi in zip(states, ranks, u, tx):
                state.rank = rank
                state.u = ui
                state.tx = txi
        self._report = None


def _to_message_class(state: _ClassState) -> MessageClass:
    from repro.model.message import DensityBound

    return MessageClass(
        name=state.name,
        length=state.length,
        deadline=state.deadline,
        bound=DensityBound(a=state.a, w=state.w),
    )
