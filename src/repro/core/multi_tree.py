"""Problem P2: worst-case searches over multiple consecutive trees (Eq. 16-19).

Section 4.2 asks for a tight upper bound on::

    Max { xi(k_1, t) + ... + xi(k_v, t) }
    s.t. k_1 + ... + k_v = u,  each k_i in [2, t]

i.e. the worst way an adversary can spread ``u`` messages over ``v``
consecutive t-leaf tree searches.  The paper's solution chain:

* Eq. 17: replace ``xi`` by its upper bound ``xi_tilde`` (sound);
* Eq. 18: ``xi_tilde`` is concave, so the even split is worst:
  ``Max sum xi_tilde(k_i) = v * xi_tilde(u/v, t)``, and this equals
  ``xi_tilde(u, t*v) - (v-1)/(m-1)`` by direct algebra;
* Eq. 19: hence ``Max sum xi(k_i) <= xi_tilde(u, t*v) - (v-1)/(m-1)``.

This module provides the analytic bound, the exhaustive optimum (exact
max-plus DP over compositions, for validation), and the Eq. 18 identity
checks used by the EQ16-19 bench.
"""

from __future__ import annotations

import dataclasses
import math

from repro.core.asymptotic import xi_tilde, xi_tilde_extended
from repro.core.search_cost import exact_cost_table
from repro.core.trees import integer_log

__all__ = [
    "multi_tree_bound",
    "multi_tree_bound_even_split",
    "multi_tree_exact_optimum",
    "MultiTreeOptimum",
    "even_split_identity_gap",
]

_NEG_INF = float("-inf")


def _validate(u: int | float, v: int, t: int, m: int) -> None:
    integer_log(t, m)
    if v < 1:
        raise ValueError(f"v must be >= 1, got {v}")
    if not 2 * v <= u <= t * v:
        raise ValueError(
            f"u={u} out of range [{2 * v}, {t * v}] for v={v}, t={t}"
        )


def multi_tree_bound(u: float, v: int, t: int, m: int) -> float:
    """Eq. 19: the paper's closed-form upper bound for Problem P2.

    ``xi_tilde(u, t*v) - (v-1)/(m-1)``.  Note the first term is evaluated on
    a *virtual* tree of ``t*v`` leaves — Eq. 18's algebraic identity — so no
    balanced-shape constraint applies to ``t*v`` itself; we therefore
    evaluate Eq. 11's formula directly.

    >>> multi_tree_bound(4, 2, 64, 4) == 2 * xi_tilde(2, 64, 4)
    True
    """
    _validate(u, v, t, m)
    half = u / 2.0
    log_term = math.log(2 * t * v / u, m)
    return (m * half - 1) / (m - 1) + m * half * log_term - u - (v - 1) / (m - 1)


def multi_tree_bound_even_split(u: float, v: int, t: int, m: int) -> float:
    """Eq. 18 middle form: ``v * xi_tilde(u/v, t)``.

    Algebraically identical to :func:`multi_tree_bound`; exposed separately
    so tests can confirm the identity numerically (Eq. 18's second equality).
    """
    _validate(u, v, t, m)
    return v * xi_tilde(u / v, t, m)


def even_split_identity_gap(u: float, v: int, t: int, m: int) -> float:
    """|Eq. 18 middle form - Eq. 18 right form|; zero up to float rounding."""
    return abs(
        multi_tree_bound_even_split(u, v, t, m) - multi_tree_bound(u, v, t, m)
    )


@dataclasses.dataclass(frozen=True, slots=True)
class MultiTreeOptimum:
    """Exhaustive optimum of Eq. 16 plus a witnessing composition."""

    value: int
    composition: tuple[int, ...]


def multi_tree_exact_optimum(u: int, v: int, t: int, m: int) -> MultiTreeOptimum:
    """Exact Eq. 16 optimum by max-plus DP over compositions of u into v parts.

    Each part is constrained to ``[2, t]`` as in the paper.  Polynomial
    (O(v * u * t)) — used to validate that :func:`multi_tree_bound` truly
    dominates, and by how much.
    """
    _validate(u, v, t, m)
    costs = exact_cost_table(m, t)
    # dp[j][s] = best sum using j parts totalling s.
    dp: list[list[float]] = [[_NEG_INF] * (u + 1) for _ in range(v + 1)]
    dp[0][0] = 0.0
    for j in range(1, v + 1):
        prev = dp[j - 1]
        cur = dp[j]
        for s in range(2 * j, min(u, t * j) + 1):
            best = _NEG_INF
            for k in range(2, min(t, s) + 1):
                p = prev[s - k]
                if p == _NEG_INF:
                    continue
                val = p + costs[k]
                if val > best:
                    best = val
            cur[s] = best
    value = dp[v][u]
    if value == _NEG_INF:  # pragma: no cover - guarded by _validate
        raise AssertionError("no feasible composition")
    # Backtrack one witnessing composition.
    parts: list[int] = []
    s = u
    for j in range(v, 0, -1):
        for k in range(2, min(t, s) + 1):
            if dp[j - 1][s - k] != _NEG_INF and (
                dp[j - 1][s - k] + costs[k] == dp[j][s]
            ):
                parts.append(k)
                s -= k
                break
        else:  # pragma: no cover - DP backtrack cannot fail
            raise AssertionError("backtrack failed")
    return MultiTreeOptimum(value=int(value), composition=tuple(reversed(parts)))


def multi_tree_bound_extended(u: float, v: int, t: int, m: int) -> float:
    """P2 bound tolerant of the regimes the feasibility conditions produce.

    The FC formulas can yield ``u/v`` below 2 (light load) or above ``2t/m``
    (heavy load per tree).  We bound each tree's search by
    ``xi_tilde_extended(u/v, t)`` — concavity still makes the even split
    worst within each linear/concave piece, and each piece dominates the
    exact staircase — keeping the bound sound across all loads.
    """
    integer_log(t, m)
    if v < 1:
        raise ValueError(f"v must be >= 1, got {v}")
    if u < 0 or u > t * v:
        raise ValueError(f"u={u} out of range [0, {t * v}]")
    return v * xi_tilde_extended(u / v, t, m)


__all__.append("multi_tree_bound_extended")
