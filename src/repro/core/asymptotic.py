"""Problem P1, asymptotic bound: Eq. 11 and tightness results Eq. 12-14.

The closed form Eq. 10 is a staircase in k (integer logs).  The paper smooths
it through the points ``k = 2 m**i`` (where the staircase touches) into the
real-valued, concave function (Eq. 11)::

    xi_tilde(k, t) = (m k/2 - 1)/(m - 1) + m (k/2) log_m(2t/k) - k

and proves:

* ``xi_tilde`` is a *tight upper bound* on ``xi`` over ``k in [2, 2t/m]``,
  with equality exactly at ``k = 2 m**i``;
* Eq. 12: the maximum gap over ``[2, 2t/m]`` is attained within the last
  period ``[2t/m^2, 2t/m]``;
* Eq. 13: the gap is at most ``(m**(1/(m-1)) / (e ln m) - 1/(m-1)) t``;
* Eq. 14: over all m, the gap is at most
  ``(3**(1/4) / (2 e ln 3) - 1/8) t <= 9.54% t`` — Eq. 13 maximised at m=9
  (note ``9**(1/8) = 3**(1/4)`` and ``e ln 9 = 2 e ln 3``).

Concavity of ``xi_tilde`` in k is what makes Problem P2 solvable in closed
form (:mod:`repro.core.multi_tree`): the worst split of u messages over v
trees is the even one.

``xi_tilde_extended`` additionally covers the regimes the feasibility
conditions hit in practice (real-valued k below 2 or above 2t/m) while
remaining a valid upper bound on ``xi`` everywhere; the switch points are
documented in DESIGN.md section 5.
"""

from __future__ import annotations

import dataclasses
import math

from repro.core.search_cost import exact_cost_table
from repro.core.trees import geometric_sum, integer_log

__all__ = [
    "xi_tilde",
    "xi_tilde_extended",
    "tightness_constant",
    "UNIVERSAL_TIGHTNESS_M",
    "universal_tightness_constant",
    "GapReport",
    "measure_gap",
    "touch_points",
]

#: Branching degree at which Eq. 13's constant is maximal (giving Eq. 14).
UNIVERSAL_TIGHTNESS_M = 9


def xi_tilde(k: float, t: int, m: int) -> float:
    """Eq. 11: the concave asymptotic upper bound ``xi_tilde(k, t)``.

    Defined for real ``k in [2, t]``; a *tight upper bound* on the exact
    ``xi`` over ``[2, 2t/m]``, exact at ``k = 2 m**i``.

    >>> round(xi_tilde(2, 64, 4), 6)   # == xi(2, 64) exactly
    11.0
    """
    integer_log(t, m)  # validate shape
    if not 2 <= k <= t:
        raise ValueError(f"k={k} out of range [2, {t}]")
    half = k / 2.0
    return (m * half - 1) / (m - 1) + m * half * math.log(2 * t / k, m) - k


def xi_tilde_extended(k: float, t: int, m: int) -> float:
    """Upper bound on ``xi`` for any real ``k in [0, t]``.

    Piecewise (each piece dominates the exact staircase):

    * ``k < 2``            -> ``xi_tilde(2, t)``   (xi(0)=1, xi(1)=0 are below)
    * ``2 <= k <= 2t/m``   -> Eq. 11
    * ``2t/m < k <= t``    -> Eq. 15 linear form ``(mt-1)/(m-1) - k``

    The two analytic pieces meet exactly at the knee ``k = 2t/m`` (Eq. 6),
    so the bound is continuous.  The feasibility conditions (section 4.3)
    evaluate this at the real ratio ``u(M)/v(M)``.
    """
    n = integer_log(t, m)
    if not 0 <= k <= t:
        raise ValueError(f"k={k} out of range [0, {t}]")
    knee = 2 * t / m
    if k < 2:
        if t < m:  # single-leaf tree: xi is {1, 0}; bound by 1
            return 1.0
        return xi_tilde(2, t, m)
    if k <= knee or n < 1:
        return xi_tilde(k, t, m)
    return geometric_sum(m, n + 1) - k


def tightness_constant(m: int) -> float:
    """Eq. 13's per-m constant: ``m**(1/(m-1)) / (e ln m) - 1/(m-1)``.

    ``max gap over [2, 2t/m] <= tightness_constant(m) * t``.
    """
    if m < 2:
        raise ValueError(f"m must be >= 2, got {m}")
    return m ** (1 / (m - 1)) / (math.e * math.log(m)) - 1 / (m - 1)


def universal_tightness_constant() -> float:
    """Eq. 14's universal constant ``3**(1/4) / (2 e ln 3) - 1/8``.

    This is ``tightness_constant(9)``, the maximum of Eq. 13 over integer m,
    and is below 9.54% as the paper states.

    >>> universal_tightness_constant() <= 0.0954
    True
    """
    return 3 ** (1 / 4) / (2 * math.e * math.log(3)) - 1 / 8


@dataclasses.dataclass(frozen=True, slots=True)
class GapReport:
    """Empirical gap between ``xi_tilde`` and exact ``xi`` for one shape.

    Eq. 12-14 are statements about the closed form of the *even* restriction
    ``xi(2p, t)`` (Eq. 9), through which ``xi_tilde`` is constructed; odd
    values sit exactly 1 below their even neighbour (Eq. 3), so the all-k
    gap exceeds the even-k gap by an O(1) term that vanishes relative to t.
    ``even_max_gap`` is the quantity Eq. 13-14 bound exactly — the tests
    verify ``even_max_gap <= tightness_constant(m) * t`` on every shape —
    while ``max_gap`` (all k) is reported for completeness.
    """

    m: int
    t: int
    max_gap: float
    argmax_k: int
    even_max_gap: float
    even_argmax_k: int
    bound_eq13: float
    bound_eq14: float

    @property
    def relative_gap(self) -> float:
        """All-k max gap as a fraction of t."""
        return self.max_gap / self.t

    @property
    def even_relative_gap(self) -> float:
        """Even-k max gap as a fraction of t (compare against <= 9.54%)."""
        return self.even_max_gap / self.t

    def argmax_in_last_period(self) -> bool:
        """Eq. 12: is the even-k maximum attained within ``[2t/m^2, 2t/m]``?"""
        lo = 2 * self.t / self.m**2
        hi = 2 * self.t / self.m
        return lo <= self.even_argmax_k <= hi


def measure_gap(m: int, t: int) -> GapReport:
    """Measure ``max_{k in [2, 2t/m]} (xi_tilde - xi)`` exactly.

    Used by the EQ11-14 benches and tests to confirm: the gap is nonnegative
    (upper bound) for every k, attained in the last period (Eq. 12), and —
    on the even restriction — below both the per-m (Eq. 13) and universal
    (Eq. 14) constants times t.
    """
    table = exact_cost_table(m, t)
    knee = 2 * t // m
    if knee < 2:
        raise ValueError(f"t={t}, m={m}: interval [2, 2t/m] is empty")
    best_gap = -math.inf
    best_k = 2
    even_best_gap = -math.inf
    even_best_k = 2
    for k in range(2, knee + 1):
        gap = xi_tilde(k, t, m) - table[k]
        if gap > best_gap:
            best_gap = gap
            best_k = k
        if k % 2 == 0 and gap > even_best_gap:
            even_best_gap = gap
            even_best_k = k
    return GapReport(
        m=m,
        t=t,
        max_gap=best_gap,
        argmax_k=best_k,
        even_max_gap=even_best_gap,
        even_argmax_k=even_best_k,
        bound_eq13=tightness_constant(m) * t,
        bound_eq14=universal_tightness_constant() * t,
    )


def touch_points(t: int, m: int) -> list[int]:
    """The ``k = 2 m**i`` values where ``xi_tilde`` equals ``xi`` exactly.

    Eq. 11's construction: ``i in [0, floor(log_m(t/2))]``.
    """
    integer_log(t, m)
    points: list[int] = []
    k = 2
    while k <= t:
        points.append(k)
        k *= m
    return points
