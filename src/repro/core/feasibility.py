"""Feasibility conditions for HRTDM under CSMA/DDCR (section 4.3).

For each message class M of source s_i the paper bounds the successful
transmission latency by ``B_DDCR(s_i, M)`` and declares the instance
feasible iff ``B_DDCR(s_i, M) <= d(M)`` for every class of every source.

The bound combines:

* ``r(M)`` — worst-case rank of M in its local EDF queue: messages msg of
  the same source can precede M only if they arrive within
  ``[T(M) - d(msg), T(M) + d(M) - d(msg)]``, a window of length d(M), so
  ``r(M) = sum_{msg in MSG_i} ceil(d(M)/w(msg)) * a(msg) - 1``;
* ``u(M)`` — worst-case number of messages transmitted by all sources over
  ``I(M) = [T(M), T(M)+d(M))``:
  ``u(M) = sum_{msg in MSG} ceil((d(M)+d(msg)-l'(M)/psi)/w(msg)) * a(msg)``;
* ``v(M) = 1 + floor(r(M)/nu_i)`` — static trees needed before M clears;
* ``S1 = v(M) * xi_tilde(u(M)/v(M), q)`` — Problem P2 bound on static-tree
  search slots (section 4.2);
* ``S2 = ceil(v(M)/2) * xi(2, F)`` — time-tree search slots; two active
  leaves per time tree is the worst-case assignment;
* the physical transmission time of the u(M) messages.

All quantities are computed in integer bit-times where exact and floats
where the paper's formulas are real-valued (the xi_tilde term).
"""

from __future__ import annotations

import dataclasses
import math
import typing

from repro.core.divide_conquer import xi_two
from repro.core.multi_tree import multi_tree_bound_extended
from repro.core.trees import is_power_of
from repro.model.message import MessageClass
from repro.model.problem import HRTDMProblem
from repro.model.source import SourceSpec

if typing.TYPE_CHECKING:  # pragma: no cover - layering: core must not pull net
    from repro.net.phy import MediumProfile

__all__ = [
    "TreeParameters",
    "queue_rank_bound",
    "interference_bound",
    "static_tree_count",
    "ClassFeasibility",
    "FeasibilityReport",
    "latency_bound",
    "check_feasibility",
    "max_feasible_scale",
]


def _ceil_div(numerator: int, denominator: int) -> int:
    """Exact ceil(numerator/denominator) for integers, denominator > 0."""
    return -(-numerator // denominator)


@dataclasses.dataclass(frozen=True, slots=True)
class TreeParameters:
    """Tree shapes the FC formulas need (protocol configuration excerpt).

    ``time_f`` = F, the time-tree leaf count; ``time_m`` its branching
    degree; ``static_q`` = q and ``static_m`` for the static tree.
    """

    time_f: int
    time_m: int
    static_q: int
    static_m: int

    def __post_init__(self) -> None:
        if not is_power_of(self.time_f, self.time_m):
            raise ValueError(
                f"F={self.time_f} is not a power of m={self.time_m}"
            )
        if not is_power_of(self.static_q, self.static_m):
            raise ValueError(
                f"q={self.static_q} is not a power of m={self.static_m}"
            )


def queue_rank_bound(target: MessageClass, source: SourceSpec) -> int:
    """``r(M)``: worst-case EDF rank of M within its own source's queue.

    >>> # a class alone in its source is always ranked first: r = a(M) - 1
    """
    total = 0
    for cls in source.message_classes:
        total += _ceil_div(target.deadline, cls.bound.w) * cls.bound.a
    return total - 1


def interference_bound(
    target: MessageClass, problem: HRTDMProblem, medium: "MediumProfile"
) -> int:
    """``u(M)``: messages transmitted by all sources over I(M), peak load."""
    l_prime = medium.encapsulate(target.length)
    total = 0
    for cls in problem.all_classes():
        window_span = target.deadline + cls.deadline - l_prime
        if window_span <= 0:
            continue
        total += _ceil_div(window_span, cls.bound.w) * cls.bound.a
    return total


def static_tree_count(rank: int, nu: int) -> int:
    """``v(M) = 1 + floor(r(M) / nu_i)``: static trees searched before M."""
    if rank < 0:
        raise ValueError(f"rank must be >= 0, got {rank}")
    if nu < 1:
        raise ValueError(f"nu must be >= 1, got {nu}")
    return 1 + rank // nu


@dataclasses.dataclass(frozen=True, slots=True)
class ClassFeasibility:
    """Per-class FC evaluation: the bound, its pieces, and the verdict."""

    source_id: int
    class_name: str
    deadline: int
    rank: int
    interference: int
    static_trees: int
    transmission_bits: int
    search_slots_static: float
    search_slots_time: int
    bound: float

    @property
    def feasible(self) -> bool:
        return self.bound <= self.deadline

    @property
    def slack(self) -> float:
        """Deadline minus bound; negative when infeasible."""
        return self.deadline - self.bound


@dataclasses.dataclass(frozen=True, slots=True)
class FeasibilityReport:
    """FC verdicts for every message class of an HRTDM instance."""

    classes: tuple[ClassFeasibility, ...]

    @property
    def feasible(self) -> bool:
        """The paper's FC: every class of every source meets its bound."""
        return all(c.feasible for c in self.classes)

    @property
    def worst(self) -> ClassFeasibility:
        """The class with the least slack (the binding constraint)."""
        return min(self.classes, key=lambda c: c.slack)

    def by_class(self, name: str) -> ClassFeasibility:
        for c in self.classes:
            if c.class_name == name:
                return c
        raise KeyError(f"no class named {name!r}")


def latency_bound(
    target: MessageClass,
    source: SourceSpec,
    problem: HRTDMProblem,
    medium: "MediumProfile",
    trees: TreeParameters,
) -> ClassFeasibility:
    """``B_DDCR(s_i, M)`` with all intermediate quantities exposed."""
    rank = queue_rank_bound(target, source)
    u = interference_bound(target, problem, medium)
    v = static_tree_count(rank, source.nu)
    # Physical transmission time of the u(M) interfering messages: the same
    # per-class counts as u(M), each weighted by its own l'(msg)/psi.
    l_prime_target = medium.encapsulate(target.length)
    transmission = 0
    for cls in problem.all_classes():
        window_span = target.deadline + cls.deadline - l_prime_target
        if window_span <= 0:
            continue
        count = _ceil_div(window_span, cls.bound.w) * cls.bound.a
        transmission += count * medium.encapsulate(cls.length)
    # S1: u(M) messages isolated over v(M) consecutive static trees (P2).
    # Clamp u/v into [1, q]: below 1 every tree still isolates >= 1 message,
    # and above q a tree's search cost saturates at xi(q, q) — the extended
    # bound's linear piece hits exactly that value at k = q, so the clamp is
    # lossless (DESIGN.md section 5).
    u_for_search = min(max(u, v), trees.static_q * v)
    s1 = multi_tree_bound_extended(
        float(u_for_search), v, trees.static_q, trees.static_m
    )
    # S2: v(M) time-tree leaves over ceil(v/2) time trees, 2 per tree worst.
    s2 = math.ceil(v / 2) * xi_two(trees.time_f, trees.time_m)
    bound = transmission + medium.slot_time * (s1 + s2)
    return ClassFeasibility(
        source_id=source.source_id,
        class_name=target.name,
        deadline=target.deadline,
        rank=rank,
        interference=u,
        static_trees=v,
        transmission_bits=transmission,
        search_slots_static=s1,
        search_slots_time=s2,
        bound=bound,
    )


def check_feasibility(
    problem: HRTDMProblem, medium: "MediumProfile", trees: TreeParameters
) -> FeasibilityReport:
    """Evaluate the paper's feasibility conditions for a whole instance.

    ``forall s_i, forall M in MSG_i:  B_DDCR(s_i, M) <= d(M)``.
    """
    rows = [
        latency_bound(cls, source, problem, medium, trees)
        for source, cls in problem.iter_source_classes()
    ]
    return FeasibilityReport(classes=tuple(rows))


def max_feasible_scale(
    problem_factory,
    medium: "MediumProfile",
    trees: TreeParameters,
    lo: float = 0.01,
    hi: float = 1.0,
    tolerance: float = 1e-3,
    evaluator=None,
) -> float:
    """Largest load scale s in [lo, hi] such that factory(s) is feasible.

    ``problem_factory(scale)`` must build an :class:`HRTDMProblem` whose
    arrival densities grow with ``scale``.  Binary search assuming
    monotonicity (denser arrivals can only hurt); returns 0.0 when even
    ``lo`` is infeasible.  Used by the FC frontier bench.

    ``hi`` is probed first so an everywhere-feasible factory costs one
    evaluation.  Every probe goes through one shared
    :class:`~repro.core.feas_grid.BatchEvaluator` — pass ``evaluator``
    (already bound to the same ``medium``/``trees``) to share its
    search-cost memos across calls, e.g. across a frontier's deadlines.
    """
    if evaluator is None:
        from repro.core.feas_grid import BatchEvaluator

        evaluator = BatchEvaluator(medium, trees)
    if evaluator(problem_factory(hi)).feasible:
        return hi
    if not evaluator(problem_factory(lo)).feasible:
        return 0.0
    feasible, infeasible = lo, hi
    while infeasible - feasible > tolerance:
        mid = (feasible + infeasible) / 2
        if evaluator(problem_factory(mid)).feasible:
            feasible = mid
        else:
            infeasible = mid
    return feasible
