"""Problem P1, closed form: Eq. 9, Eq. 10 and the linear regime Eq. 15.

The paper derives, from the special values and the derivative (Eq. 5-8), a
closed form for the even restriction (Eq. 9)::

    xi(2p, t) = (m**ceil(log_m(m p)) - 1)/(m - 1)
                + m p floor(log_m(t / (m p)))
                + (m - 2) p                         for p in [1, floor(t/2)]
    xi(0, t)  = 1

and for all k (Eq. 10, using p = floor(k/2) and Eq. 3)::

    xi(k, t) = (m**ceil(log_m(m floor(k/2))) - 1)/(m - 1)
               + m floor(k/2) floor(log_m(t / (m floor(k/2))))
               - (k - m floor(k/2))                 for k in [2, t]

Over the saturated interval ``[2t/m, t]`` the function is exactly linear
(Eq. 15)::

    xi(k, t) = (m t - 1)/(m - 1) - k

Everything here is pure integer arithmetic (the logs are integer logs), so
results agree bit-for-bit with the ground-truth DP — the tests verify this
over the full (m, t, k) grid.
"""

from __future__ import annotations

from repro.core.trees import (
    TreeShapeError,
    ceil_log,
    geometric_sum,
    integer_log,
)

__all__ = ["xi_even_closed_form", "xi_closed_form", "xi_linear_regime"]


def _floor_log_ratio(numerator: int, denominator: int, m: int) -> int:
    """Exact ``floor(log_m(numerator / denominator))``, sign included.

    For ``denominator <= numerator`` this is the largest e >= 0 with
    ``denominator * m**e <= numerator``; otherwise it is negative.
    The closed form only ever needs ``denominator <= numerator`` when its
    preconditions hold, but we compute the general case for safety.
    """
    if numerator < 1 or denominator < 1:
        raise ValueError("log ratio requires positive integers")
    if denominator <= numerator:
        e = 0
        power = denominator
        while power * m <= numerator:
            power *= m
            e += 1
        return e
    e = 0
    power = denominator
    while power > numerator:
        # floor(log) of a ratio in (0, 1): step down until <= numerator.
        if power % m == 0:
            power //= m
        else:
            power = power // m  # conservative integer step
        e -= 1
    return e


def xi_even_closed_form(p: int, t: int, m: int) -> int:
    """Eq. 9: closed form of ``xi(2p, t)``.

    >>> xi_even_closed_form(1, 64, 4)   # == xi(2, 64) == Eq. 5
    11
    """
    integer_log(t, m)  # validate shape
    if p == 0:
        return 1
    if not 1 <= p <= t // 2:
        raise ValueError(f"p={p} out of range [0, {t // 2}]")
    head = geometric_sum(m, ceil_log(m * p, m))
    middle = m * p * _floor_log_ratio(t, m * p, m)
    return head + middle + (m - 2) * p


def xi_closed_form(k: int, t: int, m: int) -> int:
    """Eq. 10: closed form of ``xi(k, t)`` for every ``k in [0, t]``.

    This is the paper's final exact answer to Problem P1.

    >>> xi_closed_form(2, 64, 4)
    11
    >>> xi_closed_form(64, 64, 4)
    21
    """
    integer_log(t, m)  # validate shape
    if k == 0:
        return 1
    if k == 1:
        return 0
    if not 2 <= k <= t:
        raise ValueError(f"k={k} out of range [0, {t}]")
    half = k // 2
    head = geometric_sum(m, ceil_log(m * half, m))
    middle = m * half * _floor_log_ratio(t, m * half, m)
    return head + middle - (k - m * half)


def xi_linear_regime(k: int, t: int, m: int) -> int:
    """Eq. 15: exact linear form of ``xi`` over the saturated interval.

    Valid for ``k in [2t/m, t]``:  ``xi(k, t) = (m t - 1)/(m - 1) - k``.
    In this regime every additional active leaf converts one empty slot into
    a (free) success, so the cost falls by exactly 1 per unit of k.
    """
    n = integer_log(t, m)
    if n < 1:
        raise TreeShapeError("linear regime requires t >= m")
    lo = 2 * t // m
    if not lo <= k <= t:
        raise ValueError(f"k={k} outside linear regime [{lo}, {t}]")
    return geometric_sum(m, n + 1) - k
