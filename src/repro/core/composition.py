"""End-to-end deadline bounds across a multi-segment fabric.

The paper's ``B_DDCR(s_i, M)`` (section 4.3) bounds the residence time
of one message class on *one* broadcast segment: from arrival in the
source's queue to the end of its successful broadcast.  A fabric
(:mod:`repro.net.fabric`) chains segments through store-and-forward
bridges, so a relayed message's end-to-end latency decomposes hop by
hop:

* on hop ``k`` the message travels as class ``M_k`` of that segment's
  HRTDM instance, arriving at time ``T_k`` and completing by
  ``T_k + B_DDCR(segment_k, M_k)`` whenever the segment satisfies FC
  (theorems P5/P6 — the bound covers every queue rank and interference
  pattern, including the bridge's relay traffic, because the relay
  class is part of the segment's analysed instance);
* the bridge then holds the frame for its fixed ``forwarding_latency``
  before it becomes an arrival on hop ``k+1``: ``T_{k+1} =
  completion_k + latency_k``.

Summing telescopes into the composed bound this module computes:

    ``end_to_end <= sum_k B_DDCR(segment_k, M_k) + sum_k latency_k``

valid whenever *every* hop's segment passes FC.  The FABRIC experiment
and the fabric smoke check hold this inequality against simulated
worst-case end-to-end latencies; the composition itself is pure
analysis and never runs a simulation.
"""

from __future__ import annotations

import dataclasses
import typing
from collections.abc import Mapping, Sequence

from repro.core.feasibility import (
    ClassFeasibility,
    TreeParameters,
    latency_bound,
)
from repro.model.route import Route

if typing.TYPE_CHECKING:  # pragma: no cover - layering guard
    from repro.model.problem import HRTDMProblem
    from repro.net.phy import MediumProfile

__all__ = [
    "HopBound",
    "RouteBound",
    "SegmentAnalysis",
    "compose_route_bound",
]


@dataclasses.dataclass(frozen=True, slots=True)
class SegmentAnalysis:
    """One segment's analytic inputs: instance, medium, tree shape."""

    problem: "HRTDMProblem"
    medium: "MediumProfile"
    trees: TreeParameters


@dataclasses.dataclass(frozen=True, slots=True)
class HopBound:
    """One hop's contribution to a composed route bound.

    ``ingress_latency`` is the forwarding latency of the bridge that
    delivered the message *onto* this hop (zero for the origin hop).
    """

    segment: str
    class_name: str
    feasibility: ClassFeasibility
    ingress_latency: int = 0

    @property
    def contribution(self) -> float:
        """What this hop adds to the end-to-end bound."""
        return self.ingress_latency + self.feasibility.bound


@dataclasses.dataclass(frozen=True, slots=True)
class RouteBound:
    """The composed end-to-end bound of one route.

    ``feasible`` demands FC on every hop — each per-segment bound at or
    under its class deadline.  When it is false the composed ``bound``
    is still the honest sum, but nothing guarantees the simulation
    stays under it (an infeasible hop may queue without limit).
    """

    route: Route
    hops: tuple[HopBound, ...]

    @property
    def bound(self) -> float:
        """``sum B_DDCR + sum bridge latencies`` in bit-times."""
        return sum(h.contribution for h in self.hops)

    @property
    def end_to_end_deadline(self) -> int:
        """The deadline the composed journey inherits: per-hop class
        deadlines plus the fixed bridge latencies in between."""
        return sum(
            h.ingress_latency + h.feasibility.deadline for h in self.hops
        )

    @property
    def feasible(self) -> bool:
        return all(h.feasibility.feasible for h in self.hops)

    @property
    def slack(self) -> float:
        """End-to-end deadline minus composed bound (negative when some
        hop is infeasible)."""
        return self.end_to_end_deadline - self.bound

    def describe(self) -> str:
        parts = " + ".join(
            (
                f"{h.feasibility.bound:.0f}[{h.segment}:{h.class_name}]"
                if h.ingress_latency == 0
                else f"{h.ingress_latency} + "
                f"{h.feasibility.bound:.0f}[{h.segment}:{h.class_name}]"
            )
            for h in self.hops
        )
        return f"{self.route.describe()}: {parts} = {self.bound:.0f}"


def compose_route_bound(
    route: Route,
    segments: Mapping[str, SegmentAnalysis],
    bridge_latencies: Sequence[int] = (),
) -> RouteBound:
    """Compose per-hop ``B_DDCR`` bounds along ``route``.

    ``segments`` maps segment name to its :class:`SegmentAnalysis`;
    ``bridge_latencies`` gives the forwarding latency of each bridge
    crossed, in route order (length ``route.bridge_count``).
    """
    if len(bridge_latencies) != route.bridge_count:
        raise ValueError(
            f"route {route.describe()!r} crosses {route.bridge_count} "
            f"bridges but {len(bridge_latencies)} latencies were given"
        )
    hops: list[HopBound] = []
    for index, hop in enumerate(route.hops):
        try:
            analysis = segments[hop.segment]
        except KeyError:
            raise KeyError(
                f"no analysis for segment {hop.segment!r}"
            ) from None
        problem = analysis.problem
        for source, cls in problem.iter_source_classes():
            if cls.name == hop.class_name:
                break
        else:
            raise KeyError(
                f"segment {hop.segment!r} has no class {hop.class_name!r}"
            )
        feasibility = latency_bound(
            cls, source, problem, analysis.medium, analysis.trees
        )
        hops.append(
            HopBound(
                segment=hop.segment,
                class_name=hop.class_name,
                feasibility=feasibility,
                ingress_latency=(
                    0 if index == 0 else int(bridge_latencies[index - 1])
                ),
            )
        )
    return RouteBound(route=route, hops=tuple(hops))
