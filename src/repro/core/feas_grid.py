"""Vectorized evaluation of the feasibility conditions over whole grids.

The scalar path (:func:`repro.core.feasibility.check_feasibility`) costs
O(C^2) Python-interpreter work per instance — for every target class it
loops over every contributor class to accumulate ``u(M)`` and the
transmission term.  Frontier campaigns, bisections and admission checks
evaluate thousands of instances, so this module restates the integer
inner loops as array operations:

* ``r(M)`` — per-source block: ``ceil(d_i / w_j) * a_j`` summed over the
  source's own classes (one outer product per source);
* ``u(M)`` and the transmission bits — one C x C matrix
  ``ceil((d_i + d_j - l'_i) / w_j) * a_j`` masked to positive windows,
  summed along the contributor axis (plain, and weighted by ``l'_j``).

The S1/S2 search terms are O(1) per class and *memoized* instead of
vectorized: ``multi_tree_bound_extended`` is evaluated through the exact
scalar function on the exact integer arguments, so every float in the
result is bit-identical to the scalar path's — the vectorized, engine
and scalar paths produce *equal* :class:`FeasibilityReport` objects, and
``check --ci`` digest-compares them.

Backends mirror :mod:`repro.net.batch`: :class:`_NumpyFeasOps` (the
``[perf]`` numpy extra, int64 columns) and :class:`_PythonFeasOps` (pure
Python, identical integer semantics).  All integer quantities stay exact
in either backend; int64 is ample for bit-time spans (< 2^40).
"""

from __future__ import annotations

import dataclasses
import itertools
import typing
from collections.abc import Callable, Mapping, Sequence

from repro.core.divide_conquer import xi_two
from repro.core.feasibility import (
    ClassFeasibility,
    FeasibilityReport,
    TreeParameters,
)
from repro.core.multi_tree import multi_tree_bound_extended
from repro.model.problem import HRTDMProblem

if typing.TYPE_CHECKING:  # pragma: no cover - layering: core must not pull net
    from repro.net.phy import MediumProfile

__all__ = [
    "BatchEvaluator",
    "FeasibilityGrid",
    "check_feasibility_batch",
    "default_backend",
    "feasibility_grid",
    "numpy_unavailable_reason",
]


# -- optional numpy ----------------------------------------------------------

#: Lazily resolved ``(module | None, reason | None)``.  Cached so the probe
#: runs once per process; tests reset it to force the import-failure path.
_NUMPY_STATE: "tuple[object | None, str | None] | None" = None


def _load_numpy() -> "tuple[object | None, str | None]":
    global _NUMPY_STATE
    if _NUMPY_STATE is None:
        try:
            import numpy
        except Exception as error:  # pragma: no cover - exercised via tests
            _NUMPY_STATE = (
                None,
                "numpy unavailable "
                f"({type(error).__name__}): pure-python backend "
                "(install the [perf] extra for the vectorized one)",
            )
        else:
            _NUMPY_STATE = (numpy, None)
    return _NUMPY_STATE


def numpy_unavailable_reason() -> str | None:
    """Why the vectorized backend is unavailable (``None`` = it is)."""
    return _load_numpy()[1]


# -- backends ----------------------------------------------------------------


class _PythonFeasOps:
    """Pure-Python backend: the scalar integer loops, verbatim."""

    name = "python"

    def ranks(
        self,
        d: Sequence[int],
        a: Sequence[int],
        w: Sequence[int],
        blocks: Sequence[tuple[int, int]],
    ) -> list[int]:
        """``r(M_i)`` for every class; ``blocks`` are per-source spans."""
        out = [0] * len(d)
        for lo, hi in blocks:
            for i in range(lo, hi):
                total = 0
                for j in range(lo, hi):
                    total += -(-d[i] // w[j]) * a[j]
                out[i] = total - 1
        return out

    def interference(
        self,
        d: Sequence[int],
        lp: Sequence[int],
        a: Sequence[int],
        w: Sequence[int],
    ) -> tuple[list[int], list[int]]:
        """``(u(M_i), transmission_bits_i)`` for every class."""
        count = len(d)
        u = [0] * count
        tx = [0] * count
        for i in range(count):
            base = d[i] - lp[i]
            total = 0
            bits = 0
            for j in range(count):
                span = base + d[j]
                if span <= 0:
                    continue
                n = -(-span // w[j]) * a[j]
                total += n
                bits += n * lp[j]
            u[i] = total
            tx[i] = bits
        return u, tx


class _NumpyFeasOps:
    """Struct-of-arrays backend over int64 columns (exact for bit-times)."""

    name = "numpy"

    def __init__(self, np_module=None):
        if np_module is None:
            np_module, reason = _load_numpy()
            if np_module is None:  # pragma: no cover - guarded by default_backend
                raise RuntimeError(reason)
        self.np = np_module

    def ranks(self, d, a, w, blocks) -> list[int]:
        np = self.np
        d_col = np.asarray(d, dtype=np.int64)
        a_col = np.asarray(a, dtype=np.int64)
        w_col = np.asarray(w, dtype=np.int64)
        if len(blocks) == len(d):
            # Every source has exactly one class — the paper's standard
            # station model — and r(M) collapses to the diagonal.
            return (-(-d_col // w_col) * a_col - 1).tolist()
        # General case: one C x C pass with a same-source mask instead of
        # a numpy call per block (tiny blocks drown in dispatch overhead).
        counts = -(-d_col[:, None] // w_col[None, :]) * a_col[None, :]
        block_id = np.repeat(
            np.arange(len(blocks)), [hi - lo for lo, hi in blocks]
        )
        counts *= block_id[:, None] == block_id[None, :]
        return (counts.sum(axis=1) - 1).tolist()

    def interference(self, d, lp, a, w) -> tuple[list[int], list[int]]:
        # f(i, j) depends on the target only through base_i = d_i - l'_i
        # and on the contributor only through its (d, w, a, l') profile,
        # so both sides are deduplicated: each distinct (base, profile)
        # pair is evaluated once, weighted by the profile's multiplicity,
        # and scattered back.  Realistic HRTDM instances repeat a handful
        # of class profiles across many stations, collapsing the C x C
        # division work to a few cells; worst case it stays C x C.
        np = self.np
        d_col = np.asarray(d, dtype=np.int64)
        lp_col = np.asarray(lp, dtype=np.int64)
        profiles = np.stack(
            [
                d_col,
                np.asarray(w, dtype=np.int64),
                np.asarray(a, dtype=np.int64),
                lp_col,
            ],
            axis=1,
        )
        groups, multiplicity = np.unique(
            profiles, axis=0, return_counts=True
        )
        bases, inverse = np.unique(d_col - lp_col, return_inverse=True)
        span = bases[:, None] + groups[None, :, 0]
        counts = -(-span // groups[None, :, 1]) * (
            groups[:, 2] * multiplicity
        )[None, :]
        counts *= span > 0
        u = counts.sum(axis=1)[inverse]
        tx = (counts * groups[None, :, 3]).sum(axis=1)[inverse]
        # tolist() yields Python ints — np.int64 must never leak into the
        # frozen report rows (it would break exact-equality comparison).
        return u.tolist(), tx.tolist()


def default_backend() -> "_NumpyFeasOps | _PythonFeasOps":
    """The fastest available backend: numpy, else the pure-Python one."""
    np_module, _ = _load_numpy()
    if np_module is None:
        return _PythonFeasOps()
    return _NumpyFeasOps(np_module)


# -- the evaluator -----------------------------------------------------------


class BatchEvaluator:
    """Vectorized drop-in for ``check_feasibility`` with shared memo state.

    One evaluator binds a ``(medium, trees)`` pair and amortises across
    every instance it sees: the encapsulation map ``l -> l'(l)``, the
    ``xi(2, F)`` time-tree constant, and every ``(u_for_search, v)`` S1
    evaluation — exactly the quantities a frontier bisection or sweep
    shard recomputes when it rebuilds scalar reports per probe.

    Reports are *equal* to the scalar path's: integers come out of exact
    array arithmetic, floats out of the same scalar expressions on the
    same arguments.
    """

    def __init__(
        self,
        medium: "MediumProfile",
        trees: TreeParameters,
        backend: "_NumpyFeasOps | _PythonFeasOps | None" = None,
    ) -> None:
        self.medium = medium
        self.trees = trees
        self.ops = backend if backend is not None else default_backend()
        self._encap: dict[int, int] = {}
        self._s1: dict[tuple[int, int], float] = {}
        self._xi_two = xi_two(trees.time_f, trees.time_m)

    @property
    def backend_name(self) -> str:
        return self.ops.name

    def encapsulate(self, length: int) -> int:
        lp = self._encap.get(length)
        if lp is None:
            lp = self._encap[length] = self.medium.encapsulate(length)
        return lp

    def search_slots_static(self, u_for_search: int, v: int) -> float:
        """Memoized ``S1 = v * xi_tilde_extended(u/v, q)`` (exact scalar)."""
        key = (u_for_search, v)
        s1 = self._s1.get(key)
        if s1 is None:
            s1 = self._s1[key] = multi_tree_bound_extended(
                float(u_for_search), v, self.trees.static_q, self.trees.static_m
            )
        return s1

    def columns(
        self, problem: HRTDMProblem
    ) -> tuple[
        list[tuple[int, int, str, int]],
        list[int], list[int], list[int], list[int],
        list[tuple[int, int]],
    ]:
        """Per-class ``(meta, d, lp, a, w, blocks)`` columns.

        ``meta`` rows are ``(source_id, nu, class_name, deadline)``.
        Classes appear in ``iter_source_classes`` order (sources as
        declared, classes as declared within each), which keeps one
        source's classes contiguous — ``blocks`` holds the per-source
        ``[lo, hi)`` spans the rank computation needs.
        """
        meta: list[tuple[int, int, str, int]] = []
        d: list[int] = []
        a: list[int] = []
        w: list[int] = []
        lp: list[int] = []
        blocks: list[tuple[int, int]] = []
        meta_append = meta.append
        d_append = d.append
        a_append = a.append
        w_append = w.append
        lp_append = lp.append
        encap = self._encap
        encap_get = encap.get
        encapsulate = self.medium.encapsulate
        for source in problem.sources:
            lo = len(d)
            source_id = source.source_id
            nu = source.nu
            for cls in source.message_classes:
                bound = cls.bound
                deadline = cls.deadline
                length = cls.length
                meta_append((source_id, nu, cls.name, deadline))
                d_append(deadline)
                lp_value = encap_get(length)
                if lp_value is None:
                    lp_value = encap[length] = encapsulate(length)
                lp_append(lp_value)
                a_append(bound.a)
                w_append(bound.w)
            blocks.append((lo, len(d)))
        return meta, d, lp, a, w, blocks

    def evaluate(self, problem: HRTDMProblem) -> FeasibilityReport:
        meta, d, lp, a, w, blocks = self.columns(problem)
        ranks = self.ops.ranks(d, a, w, blocks)
        u, tx = self.ops.interference(d, lp, a, w)
        return self.assemble_rows(meta, ranks, u, tx)

    def assemble_rows(
        self,
        meta: Sequence[tuple[int, int, str, int]],
        ranks: Sequence[int],
        u: Sequence[int],
        tx: Sequence[int],
    ) -> FeasibilityReport:
        """Combine integer columns into per-class rows, floats last.

        ``meta`` carries ``(source_id, nu, class_name, deadline)`` per
        class; the integer columns must hold Python ints (both backends
        and the engine guarantee this — np.int64 would poison equality).
        The float combine mirrors ``latency_bound`` value for value so
        the results digest-compare equal; the incremental engine calls
        this too, which keeps the combine in exactly one place.
        """
        trees = self.trees
        static_q = trees.static_q
        static_m = trees.static_m
        slot_time = self.medium.slot_time
        xi2 = self._xi_two
        s1_memo = self._s1
        combine = multi_tree_bound_extended
        rows: list[ClassFeasibility] = []
        append = rows.append
        for i, (source_id, nu, name, deadline) in enumerate(meta):
            rank = ranks[i]
            interference = u[i]
            transmission = tx[i]
            # Inlined static_tree_count / clamp / ceil(v/2): rank >= 0 and
            # nu >= 1 are structural here, and (v + 1) >> 1 == ceil(v/2).
            v = 1 + rank // nu
            u_for_search = interference if interference > v else v
            qv = static_q * v
            if u_for_search > qv:
                u_for_search = qv
            key = (u_for_search, v)
            s1 = s1_memo.get(key)
            if s1 is None:
                s1 = s1_memo[key] = combine(
                    float(u_for_search), v, static_q, static_m
                )
            s2 = ((v + 1) >> 1) * xi2
            append(
                ClassFeasibility(
                    source_id,
                    name,
                    deadline,
                    rank,
                    interference,
                    v,
                    transmission,
                    s1,
                    s2,
                    transmission + slot_time * (s1 + s2),
                )
            )
        return FeasibilityReport(classes=tuple(rows))

    __call__ = evaluate


def check_feasibility_batch(
    problems: Sequence[HRTDMProblem],
    medium: "MediumProfile",
    trees: TreeParameters,
    backend: "_NumpyFeasOps | _PythonFeasOps | None" = None,
) -> tuple[FeasibilityReport, ...]:
    """Feasibility reports for many instances through one shared evaluator.

    Equal, element for element, to mapping
    :func:`repro.core.feasibility.check_feasibility` over ``problems`` —
    just evaluated as array operations with shared S1/encapsulation memos.
    """
    evaluator = BatchEvaluator(medium, trees, backend=backend)
    return tuple(evaluator(problem) for problem in problems)


# -- grids -------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class FeasibilityGrid:
    """FC verdicts over a cartesian grid of instance parameters.

    ``axes`` preserves declaration order; ``points`` enumerates the grid
    with the *last* axis fastest (nested-loop order, matching
    :class:`repro.sweep.Grid`), aligned one-to-one with ``reports``.
    """

    axes: tuple[tuple[str, tuple[object, ...]], ...]
    points: tuple[tuple[object, ...], ...]
    reports: tuple[FeasibilityReport, ...]
    backend: str

    @property
    def size(self) -> int:
        return len(self.points)

    @property
    def axis_names(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.axes)

    def point_dicts(self) -> list[dict[str, object]]:
        names = self.axis_names
        return [dict(zip(names, point)) for point in self.points]

    def feasible_mask(self) -> tuple[bool, ...]:
        return tuple(report.feasible for report in self.reports)

    def report_at(self, **coords: object) -> FeasibilityReport:
        names = self.axis_names
        if set(coords) != set(names):
            raise KeyError(
                f"grid axes are {names}, got {tuple(sorted(coords))}"
            )
        target = tuple(coords[name] for name in names)
        for point, report in zip(self.points, self.reports):
            if point == target:
                return report
        raise KeyError(f"no grid point {target}")

    def rows(self) -> list[list[object]]:
        """Tidy per-point rows: coordinates, verdict, binding class."""
        out: list[list[object]] = []
        for point, report in zip(self.points, self.reports):
            worst = report.worst
            out.append(
                [
                    *point,
                    "yes" if report.feasible else "NO",
                    worst.class_name,
                    worst.slack,
                ]
            )
        return out


def feasibility_grid(
    problem_factory: Callable[..., HRTDMProblem],
    axes: Mapping[str, Sequence[object]],
    medium: "MediumProfile",
    trees: TreeParameters,
    backend: "_NumpyFeasOps | _PythonFeasOps | None" = None,
) -> FeasibilityGrid:
    """Evaluate the FCs over the cartesian product of ``axes``.

    ``problem_factory(**point)`` builds the instance at one grid point;
    typical axes are load ``scale``, ``deadline`` and source count ``z``.
    Every report is exactly what scalar ``check_feasibility`` returns for
    the same instance.
    """
    if not axes:
        raise ValueError("need at least one axis")
    frozen = tuple((name, tuple(values)) for name, values in axes.items())
    for name, values in frozen:
        if not values:
            raise ValueError(f"axis {name!r} has no values")
    evaluator = BatchEvaluator(medium, trees, backend=backend)
    names = tuple(name for name, _ in frozen)
    points = tuple(
        itertools.product(*(values for _, values in frozen))
    )
    reports = tuple(
        evaluator(problem_factory(**dict(zip(names, point))))
        for point in points
    )
    return FeasibilityGrid(
        axes=frozen,
        points=points,
        reports=reports,
        backend=evaluator.backend_name,
    )
