"""The paper's analytical core: Problems P1, P2 and the feasibility conditions.

Public surface:

* Problem P1 — worst-case m-ary tree search cost ``xi(k, t)``:
  :func:`xi_exact` (ground-truth DP on Eq. 1), :func:`xi_divide_conquer`
  (Eq. 2-4), :func:`xi_closed_form` (Eq. 10), :func:`xi_linear_regime`
  (Eq. 15), and the asymptotic tight upper bound :func:`xi_tilde` (Eq. 11)
  with tightness measurements (Eq. 12-14).
* Problem P2 — multiple consecutive trees: :func:`multi_tree_bound`
  (Eq. 19) and the exhaustive :func:`multi_tree_exact_optimum` (Eq. 16).
* Feasibility conditions — :func:`check_feasibility` and
  :func:`latency_bound` (``B_DDCR``, section 4.3), plus the fast path:
  vectorized :func:`check_feasibility_batch` / :func:`feasibility_grid`,
  the incremental :class:`FeasibilityEngine`, and the persistent xi-table
  store in :mod:`repro.core.xi_store` — all value-identical to the scalar
  oracle.
"""

from repro.core.asymptotic import (
    GapReport,
    measure_gap,
    tightness_constant,
    touch_points,
    universal_tightness_constant,
    xi_tilde,
    xi_tilde_extended,
)
from repro.core.closed_form import (
    xi_closed_form,
    xi_even_closed_form,
    xi_linear_regime,
)
from repro.core.divide_conquer import (
    divide_conquer_table,
    xi_divide_conquer,
    xi_even_increment,
    xi_full,
    xi_knee,
    xi_two,
)
from repro.core import xi_store
from repro.core.composition import (
    HopBound,
    RouteBound,
    SegmentAnalysis,
    compose_route_bound,
)
from repro.core.feas_engine import FeasibilityEngine
from repro.core.feas_grid import (
    BatchEvaluator,
    FeasibilityGrid,
    check_feasibility_batch,
    feasibility_grid,
)
from repro.core.feasibility import (
    ClassFeasibility,
    FeasibilityReport,
    TreeParameters,
    check_feasibility,
    interference_bound,
    latency_bound,
    max_feasible_scale,
    queue_rank_bound,
    static_tree_count,
)
from repro.core.multi_tree import (
    MultiTreeOptimum,
    multi_tree_bound,
    multi_tree_bound_even_split,
    multi_tree_bound_extended,
    multi_tree_exact_optimum,
)
from repro.core.optimal_branching import (
    BranchingComparison,
    admissible_degrees,
    compare_degrees,
    dominates,
    optimal_degree,
)
from repro.core.search_cost import (
    SearchCostTable,
    SearchOutcome,
    enumerate_worst_placements,
    exact_cost_table,
    heavy_search_bound,
    nondestructive_cost_table,
    simulate_search,
    worst_case_placement,
    xi_bruteforce,
    xi_exact,
    xi_nondestructive,
)
from repro.core.trees import (
    BalancedTree,
    LeafInterval,
    TreeShapeError,
    ceil_log,
    floor_log,
    geometric_sum,
    integer_log,
    is_power_of,
)

__all__ = [
    # trees
    "BalancedTree",
    "LeafInterval",
    "TreeShapeError",
    "ceil_log",
    "floor_log",
    "geometric_sum",
    "integer_log",
    "is_power_of",
    # P1 exact
    "SearchCostTable",
    "SearchOutcome",
    "enumerate_worst_placements",
    "exact_cost_table",
    "simulate_search",
    "worst_case_placement",
    "xi_bruteforce",
    "xi_exact",
    "xi_nondestructive",
    "nondestructive_cost_table",
    "heavy_search_bound",
    "divide_conquer_table",
    "xi_divide_conquer",
    "xi_even_increment",
    "xi_full",
    "xi_knee",
    "xi_two",
    "xi_closed_form",
    "xi_even_closed_form",
    "xi_linear_regime",
    # P1 asymptotic
    "GapReport",
    "measure_gap",
    "tightness_constant",
    "touch_points",
    "universal_tightness_constant",
    "xi_tilde",
    "xi_tilde_extended",
    # P2
    "MultiTreeOptimum",
    "multi_tree_bound",
    "multi_tree_bound_even_split",
    "multi_tree_bound_extended",
    "multi_tree_exact_optimum",
    # branching selection
    "BranchingComparison",
    "admissible_degrees",
    "compare_degrees",
    "dominates",
    "optimal_degree",
    # feasibility
    "ClassFeasibility",
    "FeasibilityReport",
    "TreeParameters",
    "check_feasibility",
    "interference_bound",
    "latency_bound",
    "max_feasible_scale",
    "queue_rank_bound",
    "static_tree_count",
    # multi-hop composition
    "HopBound",
    "RouteBound",
    "SegmentAnalysis",
    "compose_route_bound",
    # feasibility fast path
    "BatchEvaluator",
    "FeasibilityEngine",
    "FeasibilityGrid",
    "check_feasibility_batch",
    "feasibility_grid",
    "xi_store",
]
