"""Balanced m-ary tree geometry.

The protocol and analysis of Hermant & Le Lann (ICDCS 1998) are phrased over
*balanced m-ary trees* with ``t = m**n`` leaves, numbered ``0 .. t-1`` from
left to right.  A node of the tree is identified with the contiguous interval
of leaves it covers; the splitting search (``m-ts``) visits nodes in
depth-first, left-to-right order.

This module provides exact integer arithmetic for those trees: leaf-interval
nodes, children, DFS traversal and validity checks.  It is the shared
geometric vocabulary of :mod:`repro.core.search_cost` (the analysis) and
:mod:`repro.protocols.treesearch` (the distributed protocol automaton).
"""

from __future__ import annotations

import dataclasses
import functools
from collections.abc import Iterator

__all__ = [
    "TreeShapeError",
    "LeafInterval",
    "BalancedTree",
    "is_power_of",
    "integer_log",
    "ceil_log",
    "floor_log",
    "geometric_sum",
]


class TreeShapeError(ValueError):
    """Raised when tree parameters are not a valid balanced m-ary shape."""


def is_power_of(value: int, base: int) -> bool:
    """Return True iff ``value == base**e`` for some integer ``e >= 0``.

    >>> is_power_of(64, 4)
    True
    >>> is_power_of(48, 4)
    False
    """
    if base < 2:
        raise ValueError(f"base must be >= 2, got {base}")
    if value < 1:
        return False
    while value % base == 0:
        value //= base
    return value == 1


def integer_log(value: int, base: int) -> int:
    """Return ``e`` such that ``base**e == value``, exactly.

    Raises :class:`TreeShapeError` if ``value`` is not a power of ``base``.
    """
    if not is_power_of(value, base):
        raise TreeShapeError(f"{value} is not a power of {base}")
    e = 0
    while value > 1:
        value //= base
        e += 1
    return e


def floor_log(value: int, base: int) -> int:
    """Exact ``floor(log_base(value))`` for positive integers.

    Uses pure integer arithmetic — no floating point, so no boundary errors
    at exact powers (``math.log(243, 3)`` is famously 4.999...).
    """
    if value < 1:
        raise ValueError(f"value must be >= 1, got {value}")
    if base < 2:
        raise ValueError(f"base must be >= 2, got {base}")
    e = 0
    power = 1
    while power * base <= value:
        power *= base
        e += 1
    return e


def ceil_log(value: int, base: int) -> int:
    """Exact ``ceil(log_base(value))`` for positive integers."""
    if value < 1:
        raise ValueError(f"value must be >= 1, got {value}")
    if base < 2:
        raise ValueError(f"base must be >= 2, got {base}")
    e = 0
    power = 1
    while power < value:
        power *= base
        e += 1
    return e


def geometric_sum(base: int, exponent: int) -> int:
    """Return ``(base**exponent - 1) // (base - 1)`` = 1 + base + ... + base**(e-1).

    This quantity appears throughout the paper's closed forms (Eq. 7, 9, 10).
    """
    if exponent < 0:
        raise ValueError(f"exponent must be >= 0, got {exponent}")
    return (base**exponent - 1) // (base - 1)


@dataclasses.dataclass(frozen=True, slots=True)
class LeafInterval:
    """A node of a balanced m-ary tree, as its half-open leaf interval.

    ``LeafInterval(lo, hi)`` covers leaves ``lo, lo+1, ..., hi-1``.
    """

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo < 0 or self.hi <= self.lo:
            raise ValueError(f"invalid leaf interval [{self.lo}, {self.hi})")

    @property
    def width(self) -> int:
        """Number of leaves covered by this node."""
        return self.hi - self.lo

    def __contains__(self, leaf: int) -> bool:
        return self.lo <= leaf < self.hi

    def is_leaf(self) -> bool:
        """True iff this node covers a single leaf."""
        return self.width == 1

    def children(self, m: int) -> tuple["LeafInterval", ...]:
        """Split into ``m`` equal subtrees, left to right.

        Raises :class:`TreeShapeError` if the width is not divisible by ``m``
        (which for a balanced tree means this node is already a leaf).
        """
        if self.width % m != 0 or self.width < m:
            raise TreeShapeError(
                f"interval of width {self.width} cannot be split {m}-ways"
            )
        step = self.width // m
        return tuple(
            LeafInterval(self.lo + i * step, self.lo + (i + 1) * step)
            for i in range(m)
        )

    def overlaps(self, other: "LeafInterval") -> bool:
        return self.lo < other.hi and other.lo < self.hi


@dataclasses.dataclass(frozen=True, slots=True)
class BalancedTree:
    """A balanced m-ary tree with ``leaves = m**height`` leaves.

    >>> tree = BalancedTree.of(m=4, leaves=64)
    >>> tree.height
    3
    >>> tree.root.width
    64
    """

    m: int
    height: int

    def __post_init__(self) -> None:
        if self.m < 2:
            raise TreeShapeError(f"branching degree m must be >= 2, got {self.m}")
        if self.height < 0:
            raise TreeShapeError(f"height must be >= 0, got {self.height}")

    @classmethod
    def of(cls, m: int, leaves: int) -> "BalancedTree":
        """Build the tree with the given branching degree and leaf count.

        Interned: repeated calls with the same shape return one shared
        immutable instance.  The protocol layer restarts a tree search
        roughly once per slot per station, so constructing (and
        shape-validating) the tree each time would dominate simulation
        hot loops.
        """
        return _interned_tree(m, leaves)

    @property
    def leaves(self) -> int:
        """Total leaf count ``m**height``."""
        return self.m**self.height

    @property
    def root(self) -> LeafInterval:
        return _interned_root(self)

    @property
    def node_count(self) -> int:
        """Total number of nodes: 1 + m + m^2 + ... + m^height."""
        return geometric_sum(self.m, self.height + 1)

    def depth_of(self, node: LeafInterval) -> int:
        """Depth of ``node`` in this tree (root has depth 0)."""
        self._check_node(node)
        return self.height - integer_log(node.width, self.m)

    def _check_node(self, node: LeafInterval) -> None:
        if not is_power_of(node.width, self.m) and node.width != 1:
            raise TreeShapeError(f"{node} is not a node of an m={self.m} tree")
        if node.width > self.leaves or node.hi > self.leaves:
            raise TreeShapeError(f"{node} does not fit in a {self.leaves}-leaf tree")
        if node.lo % node.width != 0:
            raise TreeShapeError(f"{node} is not aligned on its own width")

    def dfs_preorder(self) -> Iterator[LeafInterval]:
        """All nodes in depth-first, left-to-right (preorder) order.

        This is the order in which the splitting search of section 3.2
        *would* visit nodes if every node caused a collision.
        """
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            if not node.is_leaf():
                stack.extend(reversed(node.children(self.m)))

    def leaf_interval(self, leaf: int) -> LeafInterval:
        """The single-leaf node for ``leaf``."""
        if not 0 <= leaf < self.leaves:
            raise ValueError(f"leaf {leaf} out of range [0, {self.leaves})")
        return LeafInterval(leaf, leaf + 1)


@functools.lru_cache(maxsize=None)
def _interned_tree(m: int, leaves: int) -> BalancedTree:
    """The shared instance behind :meth:`BalancedTree.of` (trees are tiny
    immutable value objects; only a handful of shapes exist per process)."""
    return BalancedTree(m=m, height=integer_log(leaves, m))


@functools.lru_cache(maxsize=None)
def _interned_root(tree: BalancedTree) -> LeafInterval:
    """Cached root interval: ``tree.root`` is read once per search start."""
    return LeafInterval(0, tree.leaves)
