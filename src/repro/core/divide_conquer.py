"""Problem P1, divide-and-conquer form: Eq. 2-4 and special values Eq. 5-8.

The paper (citing [22]) proves that the defining recursion Eq. 1 is also
satisfied by a much cheaper divide-and-conquer recursion in ``p`` (for even
``k = 2p``), with odd values hanging off even ones::

    xi(2p, t)   = 1 + sum_{i=0}^{m-1} xi(2*floor((min(p, t/m) + i) / m), t/m)
                    - 2 * max(0, p - t/m)            for p in [1, floor(t/2)]
    xi(0, t)    = 1
    xi(2p+1, t) = xi(2p, t) - 1                      for p in [0, ceil(t/2)-1]

with base case (Eq. 4) for the single-level tree ``t = m``::

    xi(0, m) = 1;  xi(2p, m) = 1 + m - 2p;  xi(2p+1, m) = xi(2p, m) - 1

This module implements that recursion, plus the paper's special values:

* Eq. 5: ``xi(2, t)  = m log_m(t) - 1``
* Eq. 6: ``xi(2t/m, t) = (t-1)/(m-1) + (t - 2t/m)``
* Eq. 7: ``xi(t, t)  = (t-1)/(m-1)``
* Eq. 8: ``xi(2p+2, t) - xi(2p, t) = m (log_m(t) - floor(log_m(mp))) - 2``

All are exact integer formulas; the tests cross-check every one of them
against the ground-truth DP in :mod:`repro.core.search_cost`.
"""

from __future__ import annotations

import functools

from repro.core import xi_store
from repro.core.trees import (
    BalancedTree,
    floor_log,
    geometric_sum,
    integer_log,
)

__all__ = [
    "xi_divide_conquer",
    "divide_conquer_table",
    "xi_two",
    "xi_knee",
    "xi_full",
    "xi_even_increment",
]


#: In-memory cache bound (see :mod:`repro.core.search_cost`'s note on the
#: memory/speed trade-off): entries are O(t) ints, long sweep campaigns
#: used to grow the unbounded cache in every worker, and an evicted shape
#: restores cheaply — the recursion is O(t log t), and large shapes
#: reload from the persistent store.
_LRU_TABLES = 64

#: Persist tables of at least this many leaves.  The Eq. 2-4 recursion is
#: much cheaper than the DP, so only genuinely large scheduling horizons
#: are worth a disk round-trip.
_PERSIST_MIN_LEAVES = 4096


@functools.lru_cache(maxsize=_LRU_TABLES)
def _dc_tuple(m: int, n: int) -> tuple[int, ...]:
    """Eq. 2-4 evaluated for all k in [0, t], t = m**n.

    Cache tiers as in :func:`repro.core.search_cost._cost_tuple`: the
    per-process LRU, then the persistent store for large shapes, then
    the recursion.
    """
    t = m**n
    persist = t >= _PERSIST_MIN_LEAVES
    if persist:
        cached = xi_store.load("dc", m, n, empty_cost=1)
        if cached is not None:
            return cached
    costs = [0] * (t + 1)
    costs[0] = 1
    if n == 1:
        # Eq. 4 base case: one-level tree.
        for p in range(1, t // 2 + 1):
            costs[2 * p] = 1 + m - 2 * p
    else:
        child = _dc_tuple(m, n - 1)
        t_over_m = t // m
        for p in range(1, t // 2 + 1):
            clamped = min(p, t_over_m)
            total = 1 - 2 * max(0, p - t_over_m)
            for i in range(m):
                total += child[2 * ((clamped + i) // m)]
            costs[2 * p] = total
    # Eq. 3: odd values.
    for p in range((t + 1) // 2):
        costs[2 * p + 1] = costs[2 * p] - 1
    result = tuple(costs)
    if persist:
        xi_store.store("dc", m, n, empty_cost=1, costs=result)
    return result


def divide_conquer_table(m: int, t: int) -> tuple[int, ...]:
    """All ``xi(k, t)`` for ``k in [0, t]`` via the Eq. 2-4 recursion.

    ``O(t)`` per level instead of the DP's ``O(t^2)`` — this is what makes
    large scheduling horizons (big F) computable in the feasibility tooling.
    """
    tree = BalancedTree.of(m=m, leaves=t)
    if tree.height == 0:
        return (1, 0)
    return _dc_tuple(m, tree.height)


def xi_divide_conquer(k: int, t: int, m: int) -> int:
    """``xi(k, t)`` via the divide-and-conquer recursion (Eq. 2-4)."""
    if not 0 <= k <= t:
        raise ValueError(f"k={k} out of range [0, {t}]")
    return divide_conquer_table(m, t)[k]


def xi_two(t: int, m: int) -> int:
    """Eq. 5: worst case for isolating exactly 2 leaves.

    ``xi(2, t) = m log_m(t) - 1``.  This drives the S2 term of the
    feasibility conditions (2 active leaves per time tree is the worst-case
    assignment, section 4.3).

    >>> xi_two(64, 4)
    11
    """
    n = integer_log(t, m)
    if n < 1:
        raise ValueError("xi(2, t) requires t >= m")
    return m * n - 1


def xi_knee(t: int, m: int) -> int:
    """Eq. 6: worst case at the knee ``k = 2t/m``.

    ``xi(2t/m, t) = (t-1)/(m-1) + (t - 2t/m)``; beyond this point the curve
    is exactly linear (Eq. 15).
    """
    n = integer_log(t, m)
    if n < 1:
        raise ValueError("xi(2t/m, t) requires t >= m")
    return geometric_sum(m, n) + (t - 2 * t // m)


def xi_full(t: int, m: int) -> int:
    """Eq. 7: worst case with every leaf active.

    ``xi(t, t) = (t-1)/(m-1)`` — all internal nodes collide, no empty slot.
    """
    n = integer_log(t, m)
    return geometric_sum(m, n)


def xi_even_increment(p: int, t: int, m: int) -> int:
    """Eq. 8, the "derivative": ``xi(2p+2, t) - xi(2p, t)``.

    Equals ``m (log_m(t) - floor(log_m(m p))) - 2`` for
    ``p in [1, floor(t/2) - 1]``.  Positive while the curve climbs, negative
    past the knee; its sign change locates the maximum of xi over k.
    """
    n = integer_log(t, m)
    if n < 2:
        raise ValueError("Eq. 8 requires t = m**n with n >= 2")
    if not 1 <= p <= t // 2 - 1:
        raise ValueError(f"p={p} out of range [1, {t // 2 - 1}]")
    return m * (n - floor_log(m * p, m)) - 2
