"""Branching-degree selection (generalising Fig. 2).

Fig. 2 of the paper compares 64-leaf binary and quaternary trees and notes
that the quaternary tree's worst-case search time is <= the binary tree's
for every ``k in [2, 64]``; "more generally, optimal m is derived from the
general expression of xi".  This module makes that derivation executable:
given a leaf budget and a load profile over k, rank candidate branching
degrees by exact worst-case cost.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable, Sequence

from repro.core.search_cost import exact_cost_table
from repro.core.trees import is_power_of

__all__ = [
    "admissible_degrees",
    "dominates",
    "BranchingComparison",
    "compare_degrees",
    "optimal_degree",
]


def admissible_degrees(t: int, candidates: Iterable[int] | None = None) -> list[int]:
    """Branching degrees m >= 2 for which ``t`` is a balanced-tree leaf count.

    >>> admissible_degrees(64)
    [2, 4, 8, 64]
    """
    if t < 2:
        raise ValueError(f"t must be >= 2, got {t}")
    pool = candidates if candidates is not None else range(2, t + 1)
    return [m for m in pool if m >= 2 and is_power_of(t, m)]


def dominates(m_a: int, m_b: int, t: int) -> bool:
    """True iff ``xi_{m_a}(k, t) <= xi_{m_b}(k, t)`` for every ``k in [2, t]``.

    Fig. 2's claim is ``dominates(4, 2, 64) == True``.
    """
    table_a = exact_cost_table(m_a, t)
    table_b = exact_cost_table(m_b, t)
    return all(table_a[k] <= table_b[k] for k in range(2, t + 1))


@dataclasses.dataclass(frozen=True, slots=True)
class BranchingComparison:
    """Worst-case cost profile of one branching degree at a fixed t."""

    m: int
    t: int
    costs: tuple[int, ...]
    peak_cost: int
    total_cost: int
    weighted_cost: float

    def cost_at(self, k: int) -> int:
        return self.costs[k]


def compare_degrees(
    t: int,
    degrees: Sequence[int] | None = None,
    weights: Sequence[float] | None = None,
) -> list[BranchingComparison]:
    """Exact cost profiles for each admissible degree, best first.

    ``weights[k]`` (optional, length t+1) expresses how often a search must
    isolate k leaves under the expected load; the ranking key is the
    weighted cost, falling back to the sum over ``k in [2, t]`` (uniform).
    """
    chosen = admissible_degrees(t, degrees)
    if not chosen:
        raise ValueError(f"no admissible branching degree for t={t}")
    if weights is not None and len(weights) != t + 1:
        raise ValueError(f"weights must have length {t + 1}")
    results: list[BranchingComparison] = []
    for m in chosen:
        table = exact_cost_table(m, t)
        span = range(2, t + 1)
        total = sum(table[k] for k in span)
        if weights is None:
            weighted = float(total)
        else:
            weighted = sum(weights[k] * table[k] for k in span)
        results.append(
            BranchingComparison(
                m=m,
                t=t,
                costs=table.costs,
                peak_cost=max(table[k] for k in span),
                total_cost=total,
                weighted_cost=weighted,
            )
        )
    results.sort(key=lambda r: (r.weighted_cost, r.peak_cost, r.m))
    return results


def optimal_degree(
    t: int,
    degrees: Sequence[int] | None = None,
    weights: Sequence[float] | None = None,
) -> int:
    """The branching degree minimising (weighted) worst-case search cost.

    Under CSMA/DDCR, time-tree searches isolate few leaves per tree (two is
    the worst-case assignment of section 4.3), so pass weights concentrated
    on small k to rank degrees for that regime; ties fall to the degree
    with the lower peak cost:

    >>> small_k = [1.0 if k <= 4 else 0.0 for k in range(65)]
    >>> optimal_degree(64, degrees=[2, 4, 8], weights=small_k)
    4
    """
    return compare_degrees(t, degrees, weights)[0].m
