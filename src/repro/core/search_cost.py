"""Problem P1, ground truth: worst-case m-ary tree search cost (Eq. 1).

``xi(k, t)`` is the worst-case *search time* for isolating ``k`` active
leaves in a ``t``-leaf balanced m-ary tree, counted in channel slots that do
NOT carry a successful transmission: each collision slot and each empty slot
costs 1, a successful transmission costs 0 (its physical transmission time is
accounted for separately in the feasibility conditions).

The defining recursion, Eq. 1 of the paper::

    xi(k, t) = 1 + max { xi(k_1, t/m) + ... + xi(k_m, t/m) }     k in [2, t]
               over k_1 + ... + k_m = k, each k_i in [0, t/m]
    xi(1, t) = 0      (lone active source: immediate success)
    xi(0, t) = 1      (empty probe: one wasted slot)

This module computes Eq. 1 *exactly* by dynamic programming (max-plus
convolution over the m children), and — for small trees — by brute-force
enumeration of actual searches over every placement of k active leaves.  The
DP is the ground truth against which the paper's divide-and-conquer recursion
(:mod:`repro.core.divide_conquer`), closed form (:mod:`repro.core.closed_form`)
and asymptotic bound (:mod:`repro.core.asymptotic`) are verified.
"""

from __future__ import annotations

import dataclasses
import functools
import itertools
from bisect import bisect_left
from collections.abc import Iterable, Sequence

from repro.core import xi_store
from repro.core.trees import BalancedTree, LeafInterval, TreeShapeError, integer_log

__all__ = [
    "SearchCostTable",
    "exact_cost_table",
    "nondestructive_cost_table",
    "xi_exact",
    "xi_nondestructive",
    "simulate_search",
    "SearchOutcome",
    "worst_case_placement",
    "enumerate_worst_placements",
    "xi_bruteforce",
    "heavy_search_bound",
]

_NEG_INF = float("-inf")


@dataclasses.dataclass(frozen=True, slots=True)
class SearchCostTable:
    """Exact ``xi(k, t)`` for one tree shape, for every ``k in [0, t]``.

    ``table.costs[k]`` is ``xi(k, t)``; ``table.tree`` records the shape.
    """

    tree: BalancedTree
    costs: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.costs) != self.tree.leaves + 1:
            raise ValueError(
                f"cost table has {len(self.costs)} entries for a "
                f"{self.tree.leaves}-leaf tree"
            )

    def __getitem__(self, k: int) -> int:
        return self.costs[k]

    def __len__(self) -> int:
        return len(self.costs)

    def as_series(self) -> list[tuple[int, int]]:
        """``[(k, xi(k, t)), ...]`` — convenient for plotting Fig. 1/2."""
        return list(enumerate(self.costs))


def _max_plus_convolve(
    acc: Sequence[float], child: Sequence[int], child_cap: int
) -> list[float]:
    """Max-plus convolution of ``acc`` with ``child`` (child index <= cap)."""
    out = [_NEG_INF] * (len(acc) + child_cap)
    for a_k, a_v in enumerate(acc):
        if a_v == _NEG_INF:
            continue
        for c_k in range(child_cap + 1):
            v = a_v + child[c_k]
            if v > out[a_k + c_k]:
                out[a_k + c_k] = v
    return out


#: In-memory cache bound for DP tables.  Each entry is O(t) ints (a
#: 1024-leaf table is ~8 KB of payload), so an unbounded cache used to
#: grow without limit in every long-lived sweep worker; 64 shapes cover
#: any realistic working set, and an evicted shape is cheap to restore —
#: large tables reload from the persistent store instead of recomputing.
_LRU_TABLES = 64

#: Persist tables of at least this many leaves: below it the O(m * t^2)
#: DP beats a disk round-trip, above it the store turns a once-per-process
#: recomputation into a once-per-machine one.
_PERSIST_MIN_LEAVES = 256


@functools.lru_cache(maxsize=_LRU_TABLES)
def _cost_tuple(m: int, n: int, empty_cost: int = 1) -> tuple[int, ...]:
    """Exact DP over Eq. 1 for ``t = m**n``, cached per shape.

    ``empty_cost`` is the price of probing an empty subtree: 1 on a
    destructive medium (Eq. 1's xi(0, t) = 1), 0 on a non-destructive
    (XOR/OR) bus where collision slots reveal child occupancy and empty
    subtrees are never probed (section 3.2's ATM-switch remark).

    Cache tiers: this per-process LRU, then — for shapes of at least
    ``_PERSIST_MIN_LEAVES`` leaves — the persistent cross-process store
    (:mod:`repro.core.xi_store`), then the DP itself.
    """
    persist = n > 0 and m**n >= _PERSIST_MIN_LEAVES
    if persist:
        cached = xi_store.load("cost", m, n, empty_cost)
        if cached is not None:
            return cached
    if n == 0:
        return (empty_cost, 0)
    child = _cost_tuple(m, n - 1, empty_cost)
    child_cap = m ** (n - 1)
    acc: list[float] = list(child)
    for _ in range(m - 1):
        acc = _max_plus_convolve(acc, child, child_cap)
    t = m**n
    costs = [0] * (t + 1)
    costs[0] = empty_cost
    costs[1] = 0
    for k in range(2, t + 1):
        costs[k] = 1 + int(acc[k])
    result = tuple(costs)
    if persist:
        xi_store.store("cost", m, n, empty_cost, result)
    return result


def exact_cost_table(m: int, t: int) -> SearchCostTable:
    """Exact ``xi(k, t)`` for all ``k`` via dynamic programming on Eq. 1.

    ``t`` must be ``m**n`` for some ``n >= 0``.  Complexity is
    ``O(m * t^2 / m) = O(t^2)`` per level and the result is cached, so
    repeated queries are free.

    >>> exact_cost_table(4, 64)[2]
    11
    """
    tree = BalancedTree.of(m=m, leaves=t)
    return SearchCostTable(tree=tree, costs=_cost_tuple(m, tree.height))


def nondestructive_cost_table(m: int, t: int) -> SearchCostTable:
    """Worst-case search costs on a *non-destructive* (XOR/OR) bus.

    Section 3.2: a bus internal to an ATM switch has a slot time of a few
    bit times, enabling exclusive-OR logic at bus level; a collision slot
    then reveals which children of the probed node are occupied, so empty
    subtrees are never probed.  The cost of isolating k leaves becomes the
    number of probed nodes holding >= 2 active leaves, and the worst case
    satisfies the Eq. 1 recursion with ``xi(0) = 0`` instead of 1.

    >>> nondestructive_cost_table(4, 64)[2]   # log_m(t) deep common path
    3
    """
    tree = BalancedTree.of(m=m, leaves=t)
    return SearchCostTable(
        tree=tree, costs=_cost_tuple(m, tree.height, empty_cost=0)
    )


def xi_nondestructive(k: int, t: int, m: int) -> int:
    """Exact worst-case non-destructive search cost (see
    :func:`nondestructive_cost_table`)."""
    table = nondestructive_cost_table(m, t)
    if not 0 <= k <= t:
        raise ValueError(f"k={k} out of range [0, {t}]")
    return table[k]


def xi_exact(k: int, t: int, m: int) -> int:
    """Exact worst-case search cost ``xi(k, t)`` for a balanced m-ary tree.

    >>> xi_exact(2, 64, 4)     # Eq. 5: m*log_m(t) - 1
    11
    >>> xi_exact(64, 64, 4)    # Eq. 7: (t-1)/(m-1)
    21
    """
    table = exact_cost_table(m, t)
    if not 0 <= k <= t:
        raise ValueError(f"k={k} out of range [0, {t}]")
    return table[k]


@dataclasses.dataclass(frozen=True, slots=True)
class SearchOutcome:
    """Result of simulating one full m-ary splitting search.

    ``cost`` counts collision + empty slots (successes are free, matching
    the paper's accounting); ``slots`` is the slot-by-slot channel feedback
    in visit order; ``transmission_order`` lists the isolated leaves in the
    order they were transmitted.
    """

    cost: int
    slots: tuple[str, ...]
    transmission_order: tuple[int, ...]

    @property
    def total_slots(self) -> int:
        return len(self.slots)

    @property
    def collisions(self) -> int:
        return sum(1 for s in self.slots if s == "collision")

    @property
    def empties(self) -> int:
        return sum(1 for s in self.slots if s == "silence")


def simulate_search(
    active: Iterable[int],
    t: int,
    m: int,
    heavy: Iterable[int] = (),
    skip_empty: bool = False,
) -> SearchOutcome:
    """Run the m-ary splitting search on a concrete set of active leaves.

    This is the *reference executable semantics* of ``m-ts`` (section 3.2):
    probe the root; on a collision, depth-first search the m subtrees left to
    right; silence skips a whole subtree for one slot; a lone active leaf
    transmits.  The distributed protocol automaton in
    :mod:`repro.protocols.treesearch` must produce exactly this slot sequence
    — the tests enforce it.

    ``heavy`` leaves model the time tree under CSMA/DDCR: a leaf occupied by
    *several* sources of the same deadline class.  Probing it always
    collides, but the collision slot is the root probe of the nested static
    tree search and is accounted there (section 3.2), so it contributes a
    ``"handoff"`` slot of cost 0 here; ancestors of a heavy leaf collide as
    usual.

    ``skip_empty`` selects the *non-destructive* bus semantics: collision
    slots reveal child occupancy, so empty subtrees are pruned from the
    search without being probed (no silence slots at all below a collision;
    an entirely empty tree still costs one probe of the root).

    Nodes are half-open leaf intervals, so occupancy queries are interval
    counts over the sorted leaf arrays (two ``bisect`` probes each) rather
    than O(k) membership scans — the search over a k-of-t placement costs
    O(nodes visited * log k) total, which matters to the adversarial
    analyses that replay thousands of placements.
    """
    tree = BalancedTree.of(m=m, leaves=t)
    active_set = frozenset(active)
    heavy_set = frozenset(heavy)
    for leaf in active_set | heavy_set:
        if not 0 <= leaf < t:
            raise ValueError(f"leaf {leaf} out of range [0, {t})")
    if active_set & heavy_set:
        raise ValueError("a leaf cannot be both singly and multiply occupied")
    active_sorted = sorted(active_set)
    heavy_sorted = sorted(heavy_set)
    slots: list[str] = []
    order: list[int] = []
    cost = 0
    stack: list[LeafInterval] = [tree.root]
    while stack:
        node = stack.pop()
        lo, hi = node.lo, node.hi
        first_active = bisect_left(active_sorted, lo)
        singles = bisect_left(active_sorted, hi, first_active) - first_active
        first_heavy = bisect_left(heavy_sorted, lo)
        heavies = bisect_left(heavy_sorted, hi, first_heavy) - first_heavy
        effective = singles + 2 * heavies  # a heavy leaf is >= 2 sources
        if effective == 0:
            slots.append("silence")
            cost += 1
        elif effective == 1:
            # Exactly one single (heavy leaves contribute 2 each).
            slots.append("success")
            order.append(active_sorted[first_active])
        elif node.is_leaf():
            # Heavy leaf: the collision doubles as the nested search's root
            # probe; its cost belongs to that nested search.
            slots.append("handoff")
            order.append(node.lo)
        else:
            slots.append("collision")
            cost += 1
            children = node.children(m)
            if skip_empty:
                children = tuple(
                    child
                    for child in children
                    if bisect_left(active_sorted, child.hi)
                    > bisect_left(active_sorted, child.lo)
                    or bisect_left(heavy_sorted, child.hi)
                    > bisect_left(heavy_sorted, child.lo)
                )
            stack.extend(reversed(children))
    return SearchOutcome(
        cost=cost, slots=tuple(slots), transmission_order=tuple(order)
    )


def heavy_search_bound(singles: int, heavies: int, t: int, m: int) -> int:
    """Upper bound on a TTs run's slot cost with mixed leaf occupancy.

    ``singles`` singly-occupied leaves and ``heavies`` multiply-occupied
    (nested-STs) leaves.  Each heavy leaf probes like two co-located leaves
    at maximal depth, plus one extra leaf-level slot relative to a deep
    adjacent pair, hence ``xi(singles + 2*heavies) + heavies``.  Verified
    exhaustively over small trees by the test suite.
    """
    if singles < 0 or heavies < 0:
        raise ValueError("leaf counts must be >= 0")
    k_eff = singles + 2 * heavies
    if k_eff == 0:
        return 1
    k = min(max(k_eff, 2), t)
    return xi_exact(k, t, m) + heavies


def _worst_placement(
    m: int, n: int, k: int, offset: int, empty_cost: int = 1
) -> tuple[int, ...]:
    """One placement of ``k`` active leaves achieving xi(k, m**n).

    Reconstructed by following the DP's argmax split at every level.
    """
    t = m**n
    if k == 0:
        return ()
    if k == 1:
        return (offset,)
    child = _cost_tuple(m, n - 1, empty_cost)
    child_cap = m ** (n - 1)
    best_val = _NEG_INF
    best_split: tuple[int, ...] = ()
    # Enumerate splits greedily via DP: prefix tables.
    # prefix[j][k'] = best sum of first j children totalling k'
    prefix: list[list[float]] = [[0.0] + [_NEG_INF] * k]
    for _ in range(m):
        prev = prefix[-1]
        nxt = [_NEG_INF] * (k + 1)
        for kk in range(k + 1):
            if prev[kk] == _NEG_INF:
                continue
            for c in range(min(child_cap, k - kk) + 1):
                v = prev[kk] + child[c]
                if v > nxt[kk + c]:
                    nxt[kk + c] = v
        prefix.append(nxt)
    # Backtrack the split.
    split = [0] * m
    remaining = k
    for j in range(m, 0, -1):
        target = prefix[j][remaining]
        for c in range(min(child_cap, remaining) + 1):
            if prefix[j - 1][remaining - c] != _NEG_INF and (
                prefix[j - 1][remaining - c] + child[c] == target
            ):
                split[j - 1] = c
                remaining -= c
                break
        else:  # pragma: no cover - DP backtrack cannot fail
            raise AssertionError("DP backtrack failed")
    best_split = tuple(split)
    best_val = prefix[m][k]
    del best_val  # value re-derivable; placement is what we need
    leaves: list[int] = []
    for j, kj in enumerate(best_split):
        leaves.extend(
            _worst_placement(m, n - 1, kj, offset + j * child_cap, empty_cost)
        )
    return tuple(leaves)


def worst_case_placement(
    k: int, t: int, m: int, skip_empty: bool = False
) -> tuple[int, ...]:
    """A placement of ``k`` active leaves whose search cost equals xi(k, t).

    Used by :mod:`repro.analysis.adversary` to drive the protocol simulator
    into its analytic worst case.  With ``skip_empty`` the placement
    attains the *non-destructive* worst case instead
    (:func:`xi_nondestructive`).

    >>> placement = worst_case_placement(2, 64, 4)
    >>> simulate_search(placement, 64, 4).cost == xi_exact(2, 64, 4)
    True
    """
    if not 0 <= k <= t:
        raise ValueError(f"k={k} out of range [0, {t}]")
    n = integer_log(t, m)
    placement = _worst_placement(m, n, k, 0, empty_cost=0 if skip_empty else 1)
    return tuple(sorted(placement))


def enumerate_worst_placements(k: int, t: int, m: int) -> list[tuple[int, ...]]:
    """ALL placements achieving xi(k, t), by exhaustive search (small t only).

    Exponential in ``t`` — guarded to ``t <= 64`` so a typo cannot burn CPU.
    """
    if t > 64:
        raise ValueError(f"exhaustive enumeration limited to t <= 64, got {t}")
    best = xi_exact(k, t, m)
    return [
        placement
        for placement in itertools.combinations(range(t), k)
        if simulate_search(placement, t, m).cost == best
    ]


def xi_bruteforce(k: int, t: int, m: int) -> int:
    """``xi(k, t)`` by exhaustively searching every k-subset of leaves.

    Exponential; for cross-checking the DP on small trees only (t <= 32).
    """
    if t > 32:
        raise ValueError(f"brute force limited to t <= 32, got {t}")
    if not 0 <= k <= t:
        raise ValueError(f"k={k} out of range [0, {t}]")
    if k == 0:
        return 1
    try:
        BalancedTree.of(m=m, leaves=t)
    except TreeShapeError:
        raise
    return max(
        simulate_search(placement, t, m).cost
        for placement in itertools.combinations(range(t), k)
    )
