"""Persistent, content-addressed store for xi search-cost tables.

The exact DP (:func:`repro.core.search_cost.exact_cost_table`) and the
divide-and-conquer recursion
(:func:`repro.core.divide_conquer.divide_conquer_table`) are pure
functions of ``(m, n, empty_cost)`` and the core source code, yet every
process — each sweep-shard worker, each CLI invocation, each executor
child — used to recompute them from scratch because the only cache was a
per-process ``functools.lru_cache``.  This module adds the missing tier:
a small on-disk store, layered *under* the in-memory caches, so a table
is computed once per machine and then loaded everywhere.

Layout mirrors the runtime result cache (:mod:`repro.runtime.cache`):

    .repro-cache/xi/
        ab/abcdef....pkl      # sharded by the key digest's first two chars

Each file stores the full canonical key next to the costs tuple, so a hit
is only served when the stored key matches exactly (a digest collision
degrades to a miss).  The key includes a *code salt* — a digest over every
``repro/core/*.py`` source file — so editing the analytical core
invalidates stale tables without manual version bumps.  Any unreadable,
truncated or shape-inconsistent entry is evicted and recomputed; writes
go through a temporary file plus :func:`os.replace` so concurrent workers
never observe a half-written entry (last writer wins, and both writers
wrote the same bytes anyway).

The active store is an ambient :class:`repro.context.ScopedValue`:

* default — resolved once from ``REPRO_XI_CACHE`` (a directory path;
  ``off``/``0``/empty disables persistence) and falling back to
  ``.repro-cache/xi`` under the current directory;
* :func:`use_xi_store` scopes a store (or directory, or ``None`` to
  disable) for a dynamic extent — benches use this to measure honest
  cold/warm rates;
* :func:`set_default_store` rebinds the process default (the test suite
  points it at a temporary directory).
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import os
import pathlib
import pickle
import tempfile

from repro.context import ScopedValue

__all__ = [
    "XiTableStore",
    "XiStoreStats",
    "active_store",
    "use_xi_store",
    "set_default_store",
    "core_code_salt",
    "load",
    "store",
]

#: Environment variable selecting the default store directory
#: (``off``/``0``/empty string disables persistence process-wide).
ENV_VAR = "REPRO_XI_CACHE"

#: Default directory, sharing the runtime cache root so one ``rm -rf``
#: clears both tiers.
DEFAULT_DIRECTORY = os.path.join(".repro-cache", "xi")


@functools.lru_cache(maxsize=1)
def core_code_salt() -> str:
    """Digest over every ``repro/core/*.py`` file, as a cache-busting salt.

    Narrower than the runtime cache's whole-package salt on purpose: the
    tables depend only on the analytical core, so editing simulation or
    tooling code must not invalidate them.
    """
    package_root = pathlib.Path(__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(package_root.glob("*.py")):
        digest.update(path.name.encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:16]


@dataclasses.dataclass
class XiStoreStats:
    """Hit/miss accounting over one store handle's lifetime."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writes: int = 0

    def summary(self) -> str:
        line = (
            f"xi-store: {self.hits} hits / {self.misses} misses / "
            f"{self.writes} writes"
        )
        if self.evictions:
            line += f" / {self.evictions} evictions"
        return line


class XiTableStore:
    """Pickle-backed table store keyed by ``(kind, m, n, empty_cost, salt)``."""

    def __init__(self, directory: str | os.PathLike[str] = DEFAULT_DIRECTORY):
        self.directory = pathlib.Path(directory)
        self.stats = XiStoreStats()

    def canonical_key(
        self, kind: str, m: int, n: int, empty_cost: int
    ) -> tuple:
        return (kind, m, n, empty_cost, core_code_salt())

    def path_for(self, kind: str, m: int, n: int, empty_cost: int) -> pathlib.Path:
        key = self.canonical_key(kind, m, n, empty_cost)
        digest = hashlib.sha256(repr(key).encode()).hexdigest()
        return self.directory / digest[:2] / f"{digest}.pkl"

    def load(
        self, kind: str, m: int, n: int, empty_cost: int
    ) -> tuple[int, ...] | None:
        """The stored costs tuple, or ``None`` on any miss.

        Corruption (bad pickle, wrong payload shape, stale key, wrong
        table length) never raises: the entry is evicted and the caller
        recomputes.
        """
        path = self.path_for(kind, m, n, empty_cost)
        try:
            payload = pickle.loads(path.read_bytes())
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except Exception:
            self._evict(path)
            self.stats.misses += 1
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("key") != self.canonical_key(kind, m, n, empty_cost)
            or not isinstance(payload.get("costs"), tuple)
            or len(payload["costs"]) != m**n + 1
            or not all(isinstance(c, int) for c in payload["costs"])
        ):
            self._evict(path)
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return payload["costs"]

    def store(
        self,
        kind: str,
        m: int,
        n: int,
        empty_cost: int,
        costs: tuple[int, ...],
    ) -> pathlib.Path:
        """Atomically persist ``costs`` under the table's content address."""
        path = self.path_for(kind, m, n, empty_cost)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "key": self.canonical_key(kind, m, n, empty_cost),
            "costs": tuple(costs),
        }
        handle, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "wb") as tmp:
                pickle.dump(payload, tmp, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.writes += 1
        return path

    def _evict(self, path: pathlib.Path) -> None:
        try:
            path.unlink()
            self.stats.evictions += 1
        except OSError:
            pass

    def clear(self) -> int:
        """Remove every entry; returns the number of files deleted."""
        removed = 0
        if not self.directory.exists():
            return 0
        for path in self.directory.rglob("*.pkl"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed


def _store_from_env() -> XiTableStore | None:
    """The process-default store, resolved from ``REPRO_XI_CACHE``."""
    value = os.environ.get(ENV_VAR)
    if value is not None and value.strip().lower() in ("", "0", "off", "none"):
        return None
    return XiTableStore(value if value else DEFAULT_DIRECTORY)


def _coerce(value: "XiTableStore | str | os.PathLike | None"):
    if value is None or isinstance(value, XiTableStore):
        return value
    return XiTableStore(value)


_ACTIVE: ScopedValue = ScopedValue(
    "xi-store", default=_store_from_env, coerce=_coerce
)


def active_store() -> XiTableStore | None:
    """The ambient store (``None`` = persistence disabled)."""
    return _ACTIVE.current()


def use_xi_store(value: "XiTableStore | str | os.PathLike | None"):
    """Scope a store (or directory, or ``None`` to disable) for a block."""
    return _ACTIVE.using(value)


def set_default_store(
    value: "XiTableStore | str | os.PathLike | None",
) -> XiTableStore | None:
    """Rebind the process-default store; returns the previous one."""
    return _ACTIVE.set_default(value)


def load(kind: str, m: int, n: int, empty_cost: int) -> tuple[int, ...] | None:
    """Load through the ambient store (``None`` when disabled or missing)."""
    store_ = active_store()
    return store_.load(kind, m, n, empty_cost) if store_ is not None else None


def store(
    kind: str, m: int, n: int, empty_cost: int, costs: tuple[int, ...]
) -> None:
    """Persist through the ambient store (no-op when disabled)."""
    store_ = active_store()
    if store_ is not None:
        store_.store(kind, m, n, empty_cost, costs)
