"""Campaign results: tidy per-point tables and per-axis roll-ups.

A :class:`CampaignResult` holds one :class:`PointOutcome` per resolved
grid point and derives three views:

* :meth:`~CampaignResult.table` — a tidy table, one row per point, with
  the axis coordinates, check verdicts, slot-outcome counters and
  latency quantiles (from the per-run telemetry manifests);
* :meth:`~CampaignResult.axis_rollups` — per-axis marginals, merging
  the fixed-bucket histograms by summing counts (buckets are shared, so
  the merge is exact) and summing counters;
* :meth:`~CampaignResult.aggregate_dict` /
  :meth:`~CampaignResult.aggregate_json` — the **deterministic
  aggregate document**: everything above minus wall-clock time,
  provenance sources and engine labels.  Two campaign runs that compute
  the same points must produce byte-identical aggregate JSON — this is
  the property the resume machinery is tested against.
"""

from __future__ import annotations

import dataclasses
import json
import typing

from repro.analysis.report import format_table, to_csv
from repro.obs.manifest import RunTelemetry
from repro.runtime.spec import RunSpec

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.experiments.base import ExperimentResult
    from repro.runtime.cache import CacheStats
    from repro.sweep.campaign import Campaign

__all__ = ["CampaignResult", "PointOutcome"]

#: Bump when the aggregate document layout changes incompatibly.
AGGREGATE_SCHEMA = 1

#: Quantiles surfaced in tables and roll-ups.
_QUANTILES = ((0.5, "p50"), (0.99, "p99"))


@dataclasses.dataclass
class PointOutcome:
    """One resolved grid point: coordinates, result, telemetry."""

    index: int
    point: dict[str, object]
    spec: RunSpec
    result: "ExperimentResult"
    source: str
    duration: float
    telemetry: RunTelemetry | None = None

    @property
    def ok(self) -> bool:
        return self.result.all_checks_pass

    def content_telemetry(self) -> dict[str, object] | None:
        """The manifest's deterministic projection, or ``None``."""
        if self.telemetry is None:
            return None
        return self.telemetry.content_dict()


# -- histogram arithmetic over snapshot dicts ------------------------------


def _merge_snapshots(snapshots: list[dict]) -> dict | None:
    """Merge fixed-bucket histogram snapshots by summing counts.

    All snapshots must share the same edges (every repro histogram of a
    given name does); with shared buckets the merge is exact, which is
    what makes per-axis quantile roll-ups meaningful.
    """
    merged: dict | None = None
    for snapshot in snapshots:
        if merged is None:
            merged = {
                "edges": list(snapshot["edges"]),
                "counts": list(snapshot["counts"]),
                "count": snapshot["count"],
                "total": snapshot["total"],
                "min": snapshot["min"],
                "max": snapshot["max"],
            }
            continue
        if list(snapshot["edges"]) != merged["edges"]:
            raise ValueError(
                "cannot merge histograms with different bucket edges"
            )
        merged["counts"] = [
            a + b for a, b in zip(merged["counts"], snapshot["counts"])
        ]
        merged["count"] += snapshot["count"]
        merged["total"] += snapshot["total"]
        for key, pick in (("min", min), ("max", max)):
            if snapshot[key] is not None:
                merged[key] = (
                    snapshot[key]
                    if merged[key] is None
                    else pick(merged[key], snapshot[key])
                )
    return merged


def _snapshot_quantile(snapshot: dict, q: float) -> float | None:
    """Upper-edge quantile estimate straight off a snapshot dict
    (mirrors :meth:`repro.obs.instruments.Histogram.quantile`)."""
    count = snapshot["count"]
    if not count:
        return None
    rank = q * (count - 1)
    seen = 0
    edges = snapshot["edges"]
    for index, bucket in enumerate(snapshot["counts"]):
        seen += bucket
        if bucket and seen > rank:
            if index >= len(edges):
                return snapshot["max"]
            return edges[index]
    return snapshot["max"]


def _quantile_summary(snapshot: dict) -> dict[str, object]:
    summary: dict[str, object] = {
        "count": snapshot["count"],
        "total": snapshot["total"],
        "max": snapshot["max"],
    }
    for q, label in _QUANTILES:
        summary[label] = _snapshot_quantile(snapshot, q)
    return summary


def _is_slot_counter(name: str) -> bool:
    return name.startswith("slots/") or "/slots/" in name


def _is_latency_histogram(name: str) -> bool:
    return name.startswith("latency/") or "/latency/" in name


def _jsonable(value: object) -> object:
    if isinstance(value, tuple):
        return [_jsonable(item) for item in value]
    return value


def _axis_key(value: object) -> str:
    """Stable string key for grouping points by an axis value."""
    return json.dumps(_jsonable(value), sort_keys=True, separators=(",", ":"))


@dataclasses.dataclass
class CampaignResult:
    """Everything one :func:`~repro.sweep.campaign.run_campaign` produced."""

    campaign: "Campaign"
    campaign_hash: str
    outcomes: list[PointOutcome]
    total_points: int
    total_shards: int
    executed_shards: int
    replayed_shards: int
    #: Cache misses the executor actually ran (0 on a warm resume).
    submissions: int
    cache_stats: "CacheStats | None" = None

    @property
    def complete(self) -> bool:
        return len(self.outcomes) == self.total_points

    @property
    def ok(self) -> bool:
        return self.complete and all(o.ok for o in self.outcomes)

    def failed_points(self) -> list[PointOutcome]:
        return [o for o in self.outcomes if not o.ok]

    # -- tidy table --------------------------------------------------------

    def _axis_names(self) -> tuple[str, ...]:
        return self.campaign.grid.axis_names()

    def _slot_counter_names(self) -> list[str]:
        names: set[str] = set()
        for outcome in self.outcomes:
            if outcome.telemetry is not None:
                names.update(
                    name
                    for name in outcome.telemetry.counters
                    if _is_slot_counter(name)
                )
        return sorted(names)

    def _point_latency(self, outcome: PointOutcome) -> dict | None:
        if outcome.telemetry is None:
            return None
        snapshots = [
            snapshot
            for name, snapshot in sorted(outcome.telemetry.histograms.items())
            if _is_latency_histogram(name) and snapshot["count"]
        ]
        if not snapshots:
            return None
        return _merge_snapshots(snapshots)

    def table(self) -> tuple[list[str], list[list[object]]]:
        """Headers + rows: one row per point, axes first."""
        axes = self._axis_names()
        counters = self._slot_counter_names()
        headers = list(axes) + ["experiment", "ok"] + counters
        headers += [label for _, label in _QUANTILES]
        rows: list[list[object]] = []
        for outcome in sorted(self.outcomes, key=lambda o: o.index):
            row: list[object] = [
                outcome.point.get(axis, "") for axis in axes
            ]
            row.append(outcome.spec.experiment_id)
            row.append("ok" if outcome.ok else "FAIL")
            telemetry = outcome.telemetry
            for name in counters:
                row.append(
                    telemetry.counters.get(name, 0)
                    if telemetry is not None
                    else ""
                )
            latency = self._point_latency(outcome)
            for q, _ in _QUANTILES:
                row.append(
                    _snapshot_quantile(latency, q)
                    if latency is not None
                    else ""
                )
            rows.append(row)
        return headers, rows

    def render(self) -> str:
        """Human-readable campaign report."""
        headers, rows = self.table()
        title = f"== campaign {self.campaign.name} [{self.campaign_hash}] =="
        parts = [title, format_table(headers, rows)]
        parts.append(
            f"points: {len(self.outcomes)}/{self.total_points}  "
            f"shards: {self.executed_shards} executed / "
            f"{self.replayed_shards} replayed / {self.total_shards} total  "
            f"submissions: {self.submissions}"
        )
        if not self.complete:
            parts.append(
                "campaign INCOMPLETE — rerun with --resume to finish"
            )
        for outcome in self.failed_points():
            failed = ", ".join(outcome.result.failed_checks())
            parts.append(
                f"FAILED {outcome.spec.describe()}: {failed}"
            )
        return "\n".join(parts)

    def csv(self) -> str:
        headers, rows = self.table()
        return to_csv(headers, rows)

    # -- per-axis roll-ups -------------------------------------------------

    def axis_rollups(self) -> dict[str, dict[str, dict[str, object]]]:
        """Marginal summaries: axis -> value (JSON key) -> roll-up.

        Counters sum across the axis group; histograms merge exactly
        (shared buckets) before the quantile summary, so a roll-up
        quantile reflects the pooled distribution, not an average of
        per-point quantiles.
        """
        rollups: dict[str, dict[str, dict[str, object]]] = {}
        for axis in self._axis_names():
            groups: dict[str, list[PointOutcome]] = {}
            for outcome in self.outcomes:
                if axis not in outcome.point:
                    continue
                groups.setdefault(
                    _axis_key(outcome.point[axis]), []
                ).append(outcome)
            axis_doc: dict[str, dict[str, object]] = {}
            for key in sorted(groups):
                members = groups[key]
                counters: dict[str, int] = {}
                by_name: dict[str, list[dict]] = {}
                for outcome in members:
                    if outcome.telemetry is None:
                        continue
                    for name, value in outcome.telemetry.counters.items():
                        counters[name] = counters.get(name, 0) + value
                    for name, snap in outcome.telemetry.histograms.items():
                        by_name.setdefault(name, []).append(snap)
                histograms = {}
                for name in sorted(by_name):
                    merged = _merge_snapshots(by_name[name])
                    if merged is not None and merged["count"]:
                        histograms[name] = _quantile_summary(merged)
                axis_doc[key] = {
                    "points": len(members),
                    "ok": sum(1 for outcome in members if outcome.ok),
                    "counters": dict(sorted(counters.items())),
                    "histograms": histograms,
                }
            rollups[axis] = axis_doc
        return rollups

    # -- the deterministic aggregate document ------------------------------

    def aggregate_dict(self) -> dict[str, object]:
        """The campaign's content: everything except how it was driven.

        Excludes durations, cache/pool/journal provenance and engine
        labels (the manifest content projection already strips them), so
        cold, warm and resumed runs of the same campaign — on either
        engine — agree byte for byte.
        """
        points = []
        for outcome in sorted(self.outcomes, key=lambda o: o.index):
            points.append(
                {
                    "point": {
                        axis: _jsonable(value)
                        for axis, value in outcome.point.items()
                    },
                    "experiment": outcome.spec.experiment_id,
                    "spec": outcome.spec.spec_hash(),
                    "ok": outcome.ok,
                    "failed_checks": outcome.result.failed_checks(),
                    "telemetry": outcome.content_telemetry(),
                }
            )
        return {
            "schema": AGGREGATE_SCHEMA,
            "campaign": self.campaign.name,
            "campaign_hash": self.campaign_hash,
            "complete": self.complete,
            "ok": self.ok,
            "points": points,
            "axes": self.axis_rollups(),
        }

    def aggregate_json(self) -> str:
        """Canonical JSON of :meth:`aggregate_dict` — the byte-identity
        artifact resume correctness is measured against."""
        return json.dumps(
            self.aggregate_dict(), sort_keys=True, separators=(",", ":")
        )
