"""Crash-safe JSONL checkpoint journal for sweep campaigns.

One journal file per campaign run.  The first line is a header binding
the file to a campaign content hash; every subsequent line records one
*completed shard* (a batch of grid points whose results all landed in
the result cache).  Appends are flushed and fsynced per shard, so a
killed campaign loses at most the shard it was executing — never a
recorded one — and a truncated trailing line (the kill landing
mid-write) is skipped on load rather than poisoning the resume.

Resume contract (:func:`repro.sweep.campaign.run_campaign`): shard
indexes listed in the journal are *not* resubmitted; their results are
replayed straight from the result cache.  The journal therefore stores
no results itself — it is an index into the cache, which is why resuming
against a different campaign (hash mismatch) is refused instead of
silently mixing grids.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

__all__ = ["CampaignJournal", "JournalMismatch"]

#: Bump when the journal line layout changes incompatibly.
JOURNAL_SCHEMA = 1


class JournalMismatch(ValueError):
    """The journal on disk belongs to a different campaign (or schema)."""


class CampaignJournal:
    """Append-only shard checkpoint file for one campaign."""

    def __init__(self, path: str | os.PathLike[str]) -> None:
        self.path = pathlib.Path(path)

    def begin(
        self, campaign_hash: str, total_shards: int, resume: bool
    ) -> set[int]:
        """Open the journal; returns the shard indexes already completed.

        A fresh start (``resume=False``) truncates any existing file and
        writes a new header.  A resume validates the stored header
        against ``campaign_hash`` — mismatches raise
        :class:`JournalMismatch` so a renamed or edited campaign cannot
        replay the wrong shards — and returns the recorded shard set
        (empty when the file does not exist yet, which degrades resume
        to a fresh run).
        """
        if resume and self.path.exists():
            completed = self._load(campaign_hash)
        else:
            completed = set()
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._write_line(
                {
                    "kind": "campaign",
                    "schema": JOURNAL_SCHEMA,
                    "campaign": campaign_hash,
                    "shards": total_shards,
                    "started_at": time.time(),
                },
                append=False,
            )
        return completed

    def record(
        self,
        shard_index: int,
        spec_hashes: list[str],
        ok: bool,
        duration: float,
    ) -> None:
        """Checkpoint one completed shard (flush + fsync before return)."""
        self._write_line(
            {
                "kind": "shard",
                "shard": shard_index,
                "specs": spec_hashes,
                "ok": ok,
                "duration": round(duration, 6),
                "recorded_at": time.time(),
            },
            append=True,
        )

    # -- internals ---------------------------------------------------------

    def _write_line(self, doc: dict, append: bool) -> None:
        line = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        with open(
            self.path, "a" if append else "w", encoding="utf-8"
        ) as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def _load(self, campaign_hash: str) -> set[int]:
        completed: set[int] = set()
        header: dict | None = None
        with open(self.path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    doc = json.loads(line)
                except json.JSONDecodeError:
                    # A kill mid-append leaves at most one truncated
                    # trailing line; everything before it is intact.
                    break
                if not isinstance(doc, dict):
                    break
                if header is None:
                    if (
                        doc.get("kind") != "campaign"
                        or doc.get("schema") != JOURNAL_SCHEMA
                    ):
                        raise JournalMismatch(
                            f"{self.path}: not a campaign journal "
                            "(bad or missing header)"
                        )
                    if doc.get("campaign") != campaign_hash:
                        raise JournalMismatch(
                            f"{self.path}: journal belongs to campaign "
                            f"{doc.get('campaign')!r}, not "
                            f"{campaign_hash!r}; pick a different "
                            "--journal path or drop --resume"
                        )
                    header = doc
                elif doc.get("kind") == "shard" and isinstance(
                    doc.get("shard"), int
                ):
                    completed.add(doc["shard"])
        if header is None:
            raise JournalMismatch(
                f"{self.path}: empty or headerless journal"
            )
        return completed
