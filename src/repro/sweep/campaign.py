"""Campaigns: a named grid bound to an experiment, sharded and resumable.

A :class:`Campaign` is pure data — a name, a :class:`~repro.sweep.grid.Grid`,
fixed base parameters and a shard size — whose :meth:`~Campaign.points`
expansion maps every grid point onto a content-addressed
:class:`~repro.runtime.spec.RunSpec`.  Reserved axes move into spec
fields (``seed`` → ``root_seed``, ``engine`` → engine choice, ``fault`` →
a preset fault plan, ``faults`` → a plan as canonical JSON,
``experiment`` → the experiment id); everything else becomes a runner
keyword argument layered over the campaign's base ``params``.

:func:`run_campaign` drives the expansion through the cache-aware
:class:`~repro.runtime.executor.ParallelExecutor` in bounded shards
(batches of ``batch_size`` points), checkpointing every completed shard
to a :class:`~repro.sweep.journal.CampaignJournal`.  Resuming replays
journaled shards straight from the result cache — zero resubmissions —
and because cached entries carry their telemetry manifests
(:class:`~repro.runtime.cache.CacheEntry`), the resumed aggregate is
byte-identical to an uninterrupted run's.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import pathlib
from collections.abc import Callable, Mapping, Sequence

from repro.obs.context import current_tracer
from repro.obs.manifest import RunTelemetry
from repro.runtime.cache import ResultCache
from repro.runtime.executor import ParallelExecutor, RunRecord
from repro.runtime.spec import RunSpec, freeze_params
from repro.sweep.aggregate import CampaignResult, PointOutcome
from repro.sweep.grid import Grid, SEED_AXIS
from repro.sweep.journal import CampaignJournal

__all__ = ["Campaign", "CampaignPoint", "run_campaign"]

#: Journal replays report this provenance (vs cache/serial/pool).
SOURCE_JOURNAL = "journal"


@dataclasses.dataclass(frozen=True)
class CampaignPoint:
    """One expanded grid point: its coordinates and the spec they name."""

    index: int
    point: dict[str, object]
    spec: RunSpec


@dataclasses.dataclass(frozen=True)
class Campaign:
    """A declarative sweep: grid × experiment, sharded into batches."""

    name: str
    grid: Grid
    experiment: str | None = None
    #: Fixed runner parameters under every point (frozen pairs).
    params: tuple[tuple[str, object], ...] = ()
    #: Points per executor submission; bounds peak memory and sets the
    #: checkpoint granularity (a kill loses at most one shard of work).
    batch_size: int = 4
    engine: str | None = None
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("campaigns need a non-empty name")
        if self.batch_size < 1:
            raise ValueError(
                f"batch_size must be >= 1, got {self.batch_size}"
            )

    @classmethod
    def make(
        cls,
        name: str,
        *,
        experiment: str | None = None,
        grid: Grid | None = None,
        axes: Mapping[str, Sequence[object]] | None = None,
        zipped: Mapping[str, Sequence[object]] | None = None,
        seeds: Sequence[int] | None = None,
        params: Mapping[str, object] | None = None,
        batch_size: int = 4,
        engine: str | None = None,
        description: str = "",
    ) -> "Campaign":
        """Build a campaign from a grid or inline axes (not both)."""
        if grid is not None and (axes or zipped or seeds):
            raise ValueError("pass either grid= or axes/zipped/seeds")
        if grid is None:
            grid = Grid.make(axes=axes, zipped=zipped, seeds=seeds)
        frozen_params = tuple(
            (key, freeze_params(value))
            for key, value in sorted((params or {}).items())
        )
        return cls(
            name=name,
            grid=grid,
            experiment=experiment,
            params=frozen_params,
            batch_size=batch_size,
            engine=engine,
            description=description,
        )

    def replace(self, **overrides: object) -> "Campaign":
        """A copy with fields overridden (``dataclasses.replace``)."""
        return dataclasses.replace(self, **overrides)  # type: ignore[arg-type]

    def with_seeds(self, seeds: Sequence[int]) -> "Campaign":
        """A copy whose grid uses exactly these replica seeds."""
        grid = dataclasses.replace(self.grid, seeds=tuple(seeds))
        return dataclasses.replace(self, grid=grid)

    # -- expansion ---------------------------------------------------------

    def points(self) -> list[CampaignPoint]:
        """Expand the grid into ordered, spec-bound campaign points."""
        out: list[CampaignPoint] = []
        base = dict(self.params)
        for index, point in enumerate(self.grid.points()):
            values = dict(point)
            experiment = values.pop("experiment", self.experiment)
            if not isinstance(experiment, str) or not experiment:
                raise ValueError(
                    f"campaign {self.name!r}: point {index} selects no "
                    "experiment (set campaign.experiment or an "
                    "'experiment' axis)"
                )
            seed = values.pop(SEED_AXIS, None)
            engine = values.pop("engine", self.engine)
            faults = values.pop("faults", None)
            preset = values.pop("fault", None)
            if preset is not None:
                if faults is not None:
                    raise ValueError(
                        f"campaign {self.name!r}: point {index} sets "
                        "both 'fault' and 'faults'"
                    )
                from repro.faults.models import preset_plan

                faults = preset_plan(str(preset))
            spec = RunSpec.make(
                str(experiment),
                root_seed=seed if isinstance(seed, int) else None,
                faults=faults,
                engine=engine if isinstance(engine, str) else None,
                **{**base, **values},
            )
            out.append(CampaignPoint(index=index, point=point, spec=spec))
        return out

    def shards(
        self, points: list[CampaignPoint] | None = None
    ) -> list[list[CampaignPoint]]:
        """Consecutive ``batch_size`` chunks of the point expansion."""
        if points is None:
            points = self.points()
        return [
            points[start : start + self.batch_size]
            for start in range(0, len(points), self.batch_size)
        ]

    def campaign_hash(self) -> str:
        """Content hash binding a journal to this exact expansion.

        Derived from the shard layout and every point's canonical spec
        key, so *any* change that alters what a shard index means — grid
        edits, base-param changes, a different batch size, even a code
        edit (via the spec salt) — invalidates old journals instead of
        replaying the wrong results.
        """
        payload = {
            "name": self.name,
            "batch_size": self.batch_size,
            "specs": [
                point.spec.canonical_key() for point in self.points()
            ],
        }
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> dict[str, object]:
        doc: dict[str, object] = {
            "name": self.name,
            "experiment": self.experiment,
            "params": {
                key: _jsonable(value) for key, value in self.params
            },
            "batch_size": self.batch_size,
            "engine": self.engine,
            "description": self.description,
        }
        doc.update(self.grid.to_dict())
        return doc

    @classmethod
    def from_dict(cls, doc: Mapping[str, object]) -> "Campaign":
        known = {
            "name",
            "experiment",
            "params",
            "batch_size",
            "engine",
            "description",
            "axes",
            "zip",
            "seeds",
        }
        unknown = set(doc) - known
        if unknown:
            raise ValueError(
                f"unknown campaign key(s): {sorted(unknown)}"
            )
        name = doc.get("name")
        if not isinstance(name, str) or not name:
            raise ValueError("campaign documents need a 'name' string")
        return cls.make(
            name,
            experiment=doc.get("experiment"),  # type: ignore[arg-type]
            grid=Grid.from_dict(
                {
                    key: doc[key]
                    for key in ("axes", "zip", "seeds")
                    if key in doc
                }
            ),
            params=doc.get("params"),  # type: ignore[arg-type]
            batch_size=int(doc.get("batch_size", 4)),
            engine=doc.get("engine"),  # type: ignore[arg-type]
            description=str(doc.get("description", "")),
        )

    @classmethod
    def load(cls, path: str | pathlib.Path) -> "Campaign":
        """Read a campaign document from a JSON file."""
        with open(path, encoding="utf-8") as handle:
            try:
                doc = json.load(handle)
            except json.JSONDecodeError as error:
                raise ValueError(f"{path}: not valid JSON: {error}") from None
        if not isinstance(doc, dict):
            raise ValueError(f"{path}: campaign document must be an object")
        return cls.from_dict(doc)


def _jsonable(value: object) -> object:
    """Frozen canonical form -> JSON-encodable structure."""
    if isinstance(value, tuple):
        return [_jsonable(item) for item in value]
    return value


# -- the driver ------------------------------------------------------------


def run_campaign(
    campaign: Campaign,
    *,
    jobs: int = 1,
    cache: ResultCache | None = None,
    force: bool = False,
    journal_path: str | pathlib.Path | None = None,
    resume: bool = False,
    max_shards: int | None = None,
    progress: Callable[[RunRecord, int, int], None] | None = None,
) -> CampaignResult:
    """Execute a campaign shard by shard, checkpointing as it goes.

    * Shards run through one :class:`ParallelExecutor` (``jobs`` workers,
      cache-aware), so within a shard results come back in point order
      and warm points cost no simulation.
    * After each shard completes, it is recorded in the journal; on
      ``resume=True`` recorded shards are *replayed* from the result
      cache without entering the executor at all (``submissions`` stays
      untouched).  If the cache has since lost an entry the shard falls
      back to re-execution — the journal is an index, never the data.
    * ``max_shards`` bounds how many *new* shards this invocation
      executes (time-boxing long campaigns); the result then reports
      ``complete=False`` and a later ``resume=True`` run finishes the
      rest.

    Telemetry is always collected: the per-point manifests feed the
    aggregate's slot-outcome counters and latency quantiles, and their
    deterministic content projection is what makes a resumed aggregate
    byte-identical to an uninterrupted one.
    """
    points = campaign.points()
    shards = campaign.shards(points)
    campaign_hash = campaign.campaign_hash()

    journal: CampaignJournal | None = None
    completed: set[int] = set()
    if resume and journal_path is None:
        raise ValueError("resume=True needs a journal_path")
    if resume and cache is None:
        raise ValueError(
            "resume=True needs a result cache (journaled shards replay "
            "from it)"
        )
    if journal_path is not None:
        journal = CampaignJournal(journal_path)
        completed = journal.begin(
            campaign_hash, total_shards=len(shards), resume=resume
        )

    executor = ParallelExecutor(
        jobs=jobs,
        cache=cache,
        force=force,
        progress=progress,
        collect_telemetry=True,
    )

    outcomes: list[PointOutcome | None] = [None] * len(points)
    executed_shards = 0
    replayed_shards = 0
    # Per-shard progress lands in the ambient flight recorder (if one is
    # armed), so a long campaign's black box shows which shard it was in.
    tracer = current_tracer()
    tracer_on = tracer.enabled
    for shard_index, shard in enumerate(shards):
        if shard_index in completed and not force:
            replayed = _replay_shard(cache, shard)
            if replayed is not None:
                for outcome in replayed:
                    outcomes[outcome.index] = outcome
                replayed_shards += 1
                if tracer_on:
                    tracer.emit(
                        "sweep/shard", index=shard_index,
                        points=len(shard), source="journal",
                    )
                continue
            # The cache lost an entry the journal promised: re-run.
        if max_shards is not None and executed_shards >= max_shards:
            continue  # budget spent; later journaled shards still replay
        if tracer_on:
            with tracer.span(
                "sweep/shard", index=shard_index, points=len(shard),
                source="executor",
            ):
                records = executor.run([point.spec for point in shard])
        else:
            records = executor.run([point.spec for point in shard])
        shard_ok = True
        for point, record in zip(shard, records):
            outcome = _outcome_from_record(point, record)
            outcomes[point.index] = outcome
            shard_ok = shard_ok and outcome.ok
        if journal is not None:
            journal.record(
                shard_index,
                [point.spec.spec_hash() for point in shard],
                ok=shard_ok,
                duration=sum(record.duration for record in records),
            )
        executed_shards += 1

    return CampaignResult(
        campaign=campaign,
        campaign_hash=campaign_hash,
        outcomes=[outcome for outcome in outcomes if outcome is not None],
        total_points=len(points),
        total_shards=len(shards),
        executed_shards=executed_shards,
        replayed_shards=replayed_shards,
        submissions=executor.submissions,
        cache_stats=cache.stats if cache is not None else None,
    )


def _outcome_from_record(
    point: CampaignPoint, record: RunRecord
) -> PointOutcome:
    return PointOutcome(
        index=point.index,
        point=dict(point.point),
        spec=point.spec,
        result=record.result,
        source=record.source,
        duration=record.duration,
        telemetry=record.telemetry,
    )


def _replay_shard(
    cache: ResultCache | None, shard: list[CampaignPoint]
) -> list[PointOutcome] | None:
    """Rebuild a journaled shard from the cache; ``None`` on any miss."""
    if cache is None:
        return None
    replayed: list[PointOutcome] = []
    for point in shard:
        entry = cache.get_entry(point.spec)
        if entry is None:
            return None
        manifest = None
        if entry.telemetry is not None:
            manifest = RunTelemetry.from_dict(entry.telemetry)
            manifest.source = SOURCE_JOURNAL
            manifest.wall_seconds = 0.0
        replayed.append(
            PointOutcome(
                index=point.index,
                point=dict(point.point),
                spec=point.spec,
                result=entry.result,
                source=SOURCE_JOURNAL,
                duration=0.0,
                telemetry=manifest,
            )
        )
    return replayed
