"""CLI: run sweep campaigns (``python -m repro.experiments sweep``).

Usage::

    python -m repro.experiments sweep                  # list campaigns
    python -m repro.experiments sweep fc-frontier      # run a built-in
    python -m repro.experiments sweep campaign.json    # run from a file
    python -m repro.experiments sweep fc-frontier --resume
    python -m repro.experiments sweep fc-frontier --max-shards 2
    python -m repro.experiments sweep fc-frontier --json agg.json

A campaign runs in shards of ``batch_size`` grid points; each completed
shard is checkpointed to a JSONL journal (default:
``<cache-dir>/campaigns/<name>.journal.jsonl``).  ``--resume`` replays
journaled shards straight from the result cache — a resumed campaign
resubmits zero completed work and its ``--json`` aggregate is
byte-identical to an uninterrupted run's.  ``--max-shards N`` time-boxes
an invocation to N new shards (finish later with ``--resume``).

Exit status: 0 on success, 1 when any point fails its checks, 3 when
the campaign is incomplete (``--max-shards`` budget spent).
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.cliopts import cache_options, execution_options, validate_jobs
from repro.net.engine import use_engine
from repro.obs.manifest import write_manifests
from repro.runtime import ResultCache
from repro.sweep.campaign import Campaign, run_campaign
from repro.sweep.journal import JournalMismatch
from repro.sweep.registry import builtin_campaigns, get_campaign

__all__ = ["build_parser", "main"]

#: Exit status for a campaign stopped short of completion.
EXIT_INCOMPLETE = 3


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments sweep",
        description="Run a sharded, resumable sweep campaign.",
        parents=[execution_options(), cache_options()],
    )
    parser.add_argument(
        "campaign",
        nargs="?",
        help="registered campaign name or a campaign JSON file; "
        "empty lists the registered campaigns",
    )
    parser.add_argument(
        "--list", action="store_true", help="list registered campaigns"
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="skip shards already recorded in the journal (replayed "
        "from the result cache, zero resubmissions)",
    )
    parser.add_argument(
        "--journal",
        metavar="FILE.jsonl",
        default=None,
        help="checkpoint journal path (default: "
        "<cache-dir>/campaigns/<name>.journal.jsonl)",
    )
    parser.add_argument(
        "--no-journal",
        action="store_true",
        help="disable checkpointing (campaign cannot be resumed)",
    )
    parser.add_argument(
        "--max-shards",
        type=int,
        default=None,
        metavar="N",
        help="execute at most N new shards, then stop (exit 3); "
        "finish the campaign later with --resume",
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=None,
        metavar="N",
        help="override the campaign's shard size",
    )
    parser.add_argument(
        "--json",
        metavar="FILE",
        help="write the deterministic aggregate document to FILE",
    )
    parser.add_argument(
        "--csv",
        metavar="FILE",
        help="write the tidy per-point table as CSV to FILE",
    )
    return parser


def _list_campaigns() -> None:
    campaigns = builtin_campaigns()
    if not campaigns:
        print("no campaigns registered")
        return
    print("registered campaigns:")
    for name, campaign in campaigns.items():
        grid = campaign.grid
        print(
            f"  {name:<16} {grid.size:>4} point(s) x "
            f"batch {campaign.batch_size:<3} {campaign.description}"
        )


def _resolve_campaign(
    parser: argparse.ArgumentParser, token: str
) -> Campaign:
    path = pathlib.Path(token)
    if token.endswith(".json") or path.exists():
        try:
            return Campaign.load(path)
        except (OSError, ValueError) as exc:
            parser.error(f"cannot load campaign {token!r}: {exc}")
    try:
        return get_campaign(token)
    except KeyError as exc:
        parser.error(str(exc.args[0]))
    raise AssertionError("unreachable")  # pragma: no cover


def _validate_points(
    parser: argparse.ArgumentParser, campaign: Campaign
) -> None:
    """Fail fast on unknown experiments or seeds on seedless ones."""
    from repro.experiments.registry import EXPERIMENTS

    for point in campaign.points():
        entry = EXPERIMENTS.get(point.spec.experiment_id)
        if entry is None:
            parser.error(
                f"campaign {campaign.name!r}: point {point.index} names "
                f"unknown experiment {point.spec.experiment_id!r}"
            )
        if point.spec.root_seed is not None and entry.seed_param is None:
            parser.error(
                f"campaign {campaign.name!r}: experiment "
                f"{point.spec.experiment_id} takes no seed, but point "
                f"{point.index} sets one"
            )


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    validate_jobs(parser, args.jobs)
    if args.list or not args.campaign:
        _list_campaigns()
        return 0
    campaign = _resolve_campaign(parser, args.campaign)
    if args.batch_size is not None:
        if args.batch_size < 1:
            parser.error(f"--batch-size must be >= 1, got {args.batch_size}")
        campaign = campaign.replace(batch_size=args.batch_size)
    if args.seed is not None:
        campaign = campaign.with_seeds((args.seed,))
    _validate_points(parser, campaign)
    if args.max_shards is not None and args.max_shards < 0:
        parser.error(f"--max-shards must be >= 0, got {args.max_shards}")

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    journal_path: pathlib.Path | None = None
    if args.journal is not None:
        journal_path = pathlib.Path(args.journal)
    elif not args.no_journal and cache is not None:
        journal_path = (
            cache.directory / "campaigns" / f"{campaign.name}.journal.jsonl"
        )
    if args.resume and journal_path is None:
        parser.error("--resume needs a journal (drop --no-journal)")
    if args.resume and cache is None:
        parser.error("--resume needs the result cache (drop --no-cache)")

    def progress(record, index, total):
        print(
            f"  [{index + 1:>2}/{total}] {record.describe()}",
            file=sys.stderr,
            flush=True,
        )

    try:
        with use_engine(args.engine):
            result = run_campaign(
                campaign,
                jobs=args.jobs,
                cache=cache,
                force=args.force,
                journal_path=journal_path,
                resume=args.resume,
                max_shards=args.max_shards,
                progress=progress,
            )
    except JournalMismatch as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    print(result.render())
    if args.json:
        pathlib.Path(args.json).write_text(result.aggregate_json() + "\n")
        print(f"wrote {args.json}", file=sys.stderr)
    if args.csv:
        pathlib.Path(args.csv).write_text(result.csv() + "\n")
        print(f"wrote {args.csv}", file=sys.stderr)
    if args.telemetry is not None:
        manifests = [
            outcome.telemetry
            for outcome in result.outcomes
            if outcome.telemetry is not None
        ]
        written = write_manifests(args.telemetry, manifests)
        print(
            f"wrote {written} telemetry manifest(s) to {args.telemetry}",
            file=sys.stderr,
        )
    if cache is not None:
        print(cache.stats.summary(), file=sys.stderr)
    if not result.complete:
        return EXIT_INCOMPLETE
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
