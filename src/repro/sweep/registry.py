"""Named campaign registry.

Experiment modules register their canonical sweeps at import time
(:func:`register_campaign` as a declaration next to the experiment
code), and the CLI resolves names through :func:`builtin_campaigns`,
which imports the experiment registry first so every built-in campaign
has had the chance to register — the same lazy-registration pattern the
experiment catalog itself uses.
"""

from __future__ import annotations

from repro.sweep.campaign import Campaign

__all__ = ["builtin_campaigns", "get_campaign", "register_campaign"]

_CAMPAIGNS: dict[str, Campaign] = {}


def register_campaign(campaign: Campaign) -> Campaign:
    """Register a campaign under its name; returns it for assignment."""
    existing = _CAMPAIGNS.get(campaign.name)
    if existing is not None and existing != campaign:
        raise ValueError(
            f"campaign name {campaign.name!r} already registered"
        )
    _CAMPAIGNS[campaign.name] = campaign
    return campaign


def builtin_campaigns() -> dict[str, Campaign]:
    """All registered campaigns by name (triggers built-in registration)."""
    # Importing the experiment catalog imports every experiment module,
    # whose module-level register_campaign() calls populate _CAMPAIGNS.
    # The serve package registers its trace campaign the same way.
    import repro.experiments.registry  # noqa: F401
    import repro.serve  # noqa: F401

    return dict(sorted(_CAMPAIGNS.items()))


def get_campaign(name: str) -> Campaign:
    campaigns = builtin_campaigns()
    try:
        return campaigns[name]
    except KeyError:
        known = ", ".join(sorted(campaigns)) or "<none>"
        raise KeyError(
            f"unknown campaign {name!r} (known: {known})"
        ) from None
