"""Declarative parameter grids: axes in, ordered grid points out.

A :class:`Grid` names the design space of a campaign as data:

* ``axes`` — independent axes combined by cartesian product, in
  declaration order (first axis outermost, so the expansion order is
  the nested-for-loops order a hand-rolled sweep would produce);
* ``zipped`` — axes that vary *together* (all the same length), forming
  one composite axis: ``zipped={"a": (1, 2), "w": (10, 20)}`` yields
  ``(a=1, w=10)`` and ``(a=2, w=20)``, never the cross terms;
* ``seeds`` — replica seeds, expanded as an innermost ``seed`` axis
  (the sweep layer maps it onto :attr:`RunSpec.root_seed`).

Axis values are canonicalised through
:func:`repro.runtime.spec.freeze_params`, so a grid only ever holds
spec-able values (scalars and nestings of tuples over them) and its
expansion is picklable, hashable and JSON-round-trippable.

Reserved axis names carry RunSpec-level meaning when a campaign expands
the grid (see :mod:`repro.sweep.campaign`): ``experiment`` selects the
experiment id per point, ``engine`` the simulation engine, ``fault`` a
preset fault-plan name, ``faults`` a fault plan as canonical JSON;
every other axis becomes a runner keyword argument.
"""

from __future__ import annotations

import dataclasses
import itertools
from collections.abc import Mapping, Sequence

from repro.runtime.spec import freeze_params

__all__ = ["Grid", "RESERVED_AXES", "SEED_AXIS"]

#: Axis names that map onto RunSpec fields instead of runner params.
RESERVED_AXES = frozenset({"experiment", "engine", "fault", "faults"})

#: The implicit axis name ``seeds`` replicas expand under.
SEED_AXIS = "seed"

_Axes = tuple[tuple[str, tuple[object, ...]], ...]


def _freeze_axes(axes: Mapping[str, Sequence[object]] | None, kind: str) -> _Axes:
    frozen: list[tuple[str, tuple[object, ...]]] = []
    for name, values in (axes or {}).items():
        if not isinstance(name, str) or not name:
            raise ValueError(f"{kind} axis names must be non-empty strings")
        if name == SEED_AXIS:
            raise ValueError(
                f"axis {SEED_AXIS!r} is implicit; declare seed replicas "
                "through Grid.make(seeds=...)"
            )
        if isinstance(values, (str, bytes)) or not isinstance(
            values, Sequence
        ):
            raise TypeError(
                f"{kind} axis {name!r} needs a sequence of values, got "
                f"{type(values).__name__}"
            )
        if not values:
            raise ValueError(f"{kind} axis {name!r} has no values")
        frozen.append(
            (name, tuple(freeze_params(value) for value in values))
        )
    return tuple(frozen)


@dataclasses.dataclass(frozen=True)
class Grid:
    """An immutable, canonicalised parameter grid."""

    axes: _Axes = ()
    zipped: _Axes = ()
    seeds: tuple[int, ...] = ()

    @classmethod
    def make(
        cls,
        axes: Mapping[str, Sequence[object]] | None = None,
        zipped: Mapping[str, Sequence[object]] | None = None,
        seeds: Sequence[int] | None = None,
    ) -> "Grid":
        """Build a grid, canonicalising and validating every axis."""
        frozen_axes = _freeze_axes(axes, "cartesian")
        frozen_zipped = _freeze_axes(zipped, "zipped")
        lengths = {len(values) for _, values in frozen_zipped}
        if len(lengths) > 1:
            detail = ", ".join(
                f"{name}={len(values)}" for name, values in frozen_zipped
            )
            raise ValueError(
                f"zipped axes must all have the same length ({detail})"
            )
        names = [name for name, _ in frozen_axes]
        names += [name for name, _ in frozen_zipped]
        duplicates = {name for name in names if names.count(name) > 1}
        if duplicates:
            raise ValueError(
                f"axis name(s) declared twice: {sorted(duplicates)}"
            )
        seed_tuple = tuple(seeds or ())
        if any(not isinstance(seed, int) or isinstance(seed, bool)
               for seed in seed_tuple):
            raise TypeError(f"seeds must be ints, got {seed_tuple!r}")
        return cls(axes=frozen_axes, zipped=frozen_zipped, seeds=seed_tuple)

    # -- expansion ---------------------------------------------------------

    def axis_names(self) -> tuple[str, ...]:
        """All axis names in point order (cartesian, zipped, seed)."""
        names = [name for name, _ in self.axes]
        names += [name for name, _ in self.zipped]
        if self.seeds:
            names.append(SEED_AXIS)
        return tuple(names)

    @property
    def size(self) -> int:
        """Number of grid points the expansion yields."""
        size = 1
        for _, values in self.axes:
            size *= len(values)
        if self.zipped:
            size *= len(self.zipped[0][1])
        if self.seeds:
            size *= len(self.seeds)
        return size

    def points(self) -> list[dict[str, object]]:
        """Expand to ordered grid points (cartesian × zipped × seeds).

        The first cartesian axis is outermost and seeds are innermost,
        matching the nested-loop order of a hand-rolled sweep; the
        expansion is a pure function of the grid, so two processes
        expanding the same grid enumerate identical points in identical
        order — what the resume journal relies on.
        """
        axis_values: list[list[tuple[tuple[str, object], ...]]] = [
            [((name, value),) for value in values]
            for name, values in self.axes
        ]
        if self.zipped:
            names = [name for name, _ in self.zipped]
            columns = [values for _, values in self.zipped]
            axis_values.append(
                [tuple(zip(names, row)) for row in zip(*columns)]
            )
        if self.seeds:
            axis_values.append(
                [((SEED_AXIS, seed),) for seed in self.seeds]
            )
        points: list[dict[str, object]] = []
        for combination in itertools.product(*axis_values):
            point: dict[str, object] = {}
            for group in combination:
                point.update(group)
            points.append(point)
        return points

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> dict[str, object]:
        return {
            "axes": {name: _jsonable(values) for name, values in self.axes},
            "zip": {
                name: _jsonable(values) for name, values in self.zipped
            },
            "seeds": list(self.seeds),
        }

    @classmethod
    def from_dict(cls, doc: Mapping[str, object]) -> "Grid":
        unknown = set(doc) - {"axes", "zip", "seeds"}
        if unknown:
            raise ValueError(
                f"unknown grid key(s): {sorted(unknown)} "
                "(expected axes/zip/seeds)"
            )
        return cls.make(
            axes=doc.get("axes"),  # type: ignore[arg-type]
            zipped=doc.get("zip"),  # type: ignore[arg-type]
            seeds=doc.get("seeds"),  # type: ignore[arg-type]
        )


def _jsonable(value: object) -> object:
    """Frozen canonical form -> JSON-encodable structure."""
    if isinstance(value, tuple):
        return [_jsonable(item) for item in value]
    return value
