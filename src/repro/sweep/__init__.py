"""Sweep campaigns: declarative grids, sharded execution, resumable runs.

The campaign subsystem turns a declarative parameter grid
(:class:`~repro.sweep.grid.Grid` — cartesian axes, zipped axes, seed
replicas) into content-addressed :class:`~repro.runtime.spec.RunSpec`
batches, runs them through the cache-aware executor shard by shard,
checkpoints every completed shard to a JSONL journal
(:class:`~repro.sweep.journal.CampaignJournal`), and aggregates the
results into tidy per-axis tables with telemetry roll-ups
(:class:`~repro.sweep.aggregate.CampaignResult`).

Killing a campaign and resuming it (``--resume``) resubmits zero
completed shards — they replay from the result cache, telemetry
included — and the resumed aggregate document is byte-identical to an
uninterrupted run's.

CLI: ``python -m repro.experiments sweep`` (:mod:`repro.sweep.cli`).
"""

from repro.sweep.aggregate import CampaignResult, PointOutcome
from repro.sweep.campaign import Campaign, CampaignPoint, run_campaign
from repro.sweep.grid import Grid
from repro.sweep.journal import CampaignJournal, JournalMismatch
from repro.sweep.registry import (
    builtin_campaigns,
    get_campaign,
    register_campaign,
)

__all__ = [
    "Campaign",
    "CampaignJournal",
    "CampaignPoint",
    "CampaignResult",
    "Grid",
    "JournalMismatch",
    "PointOutcome",
    "builtin_campaigns",
    "get_campaign",
    "register_campaign",
    "run_campaign",
]
