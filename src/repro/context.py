"""Generic ambient-value scoping: one substrate for every ``use_*`` helper.

Three subsystems hand a value down a deep call tree without threading it
through every signature: the engine selector
(:func:`repro.net.engine.use_engine`), the fault plan
(:func:`repro.faults.context.use_fault_plan`) and telemetry
(:func:`repro.obs.context.use_telemetry`).  They used to be three
copy-pasted stack implementations; all three are now thin wrappers over
:class:`ScopedValue`, and new ambient values (the sweep layer, future
backends) get scoping for free.

A :class:`ScopedValue` is a stack whose bottom element is the process
default and whose top is the innermost active scope:

* :meth:`current` reads the top (lazily initialising the bottom from the
  ``default`` factory on first read);
* :meth:`using` is a context manager pushing a value for a dynamic
  extent — scopes nest, and unwinding is exception-safe;
* :meth:`set_default` replaces the top in place (outside any scope that
  is the process default; inside a scope the change dies with the
  scope), returning the previous value — the semantics
  ``set_default_engine`` always had.

Two knobs cover the behavioural differences between the original three:

* ``coerce`` — applied to every value entering the stack (validation,
  or mapping ``None`` to a sentinel like ``NULL_TELEMETRY``);
* ``none_is_noop`` — when true, ``using(None)`` pushes nothing and
  yields the current value (the engine's "``None`` means inherit");
  when false, ``None`` is scoped like any other value (the fault plan's
  "``None`` shadows an outer plan").
"""

from __future__ import annotations

import contextlib
import typing
from collections.abc import Callable, Iterator

__all__ = ["ScopedValue"]

T = typing.TypeVar("T")

#: Placeholder for a lazily-initialised stack bottom.
_UNSET = object()


class ScopedValue(typing.Generic[T]):
    """A named ambient value with stack-scoped overrides."""

    def __init__(
        self,
        name: str,
        default: Callable[[], T],
        *,
        coerce: Callable[[T], T] | None = None,
        none_is_noop: bool = False,
    ) -> None:
        self.name = name
        self._default = default
        self._coerce = coerce
        self._none_is_noop = none_is_noop
        self._stack: list[object] = [_UNSET]

    def _enter(self, value: T) -> T:
        return self._coerce(value) if self._coerce is not None else value

    def current(self) -> T:
        """The innermost scoped value (the process default outside any)."""
        top = self._stack[-1]
        if top is _UNSET:
            top = self._stack[-1] = self._enter(self._default())
        return typing.cast("T", top)

    def set_default(self, value: T) -> T:
        """Replace the innermost value in place; returns the previous one.

        Outside any scope this mutates the process default; inside a
        scope the replacement only lives until that scope exits.
        """
        previous = self.current()
        self._stack[-1] = self._enter(value)
        return previous

    @contextlib.contextmanager
    def using(self, value: T | None) -> Iterator[T]:
        """Scope ``value`` for the dynamic extent; yields the active value.

        With ``none_is_noop`` set, ``using(None)`` pushes nothing and
        yields whatever is already current.
        """
        if value is None and self._none_is_noop:
            yield self.current()
            return
        self._stack.append(self._enter(typing.cast("T", value)))
        try:
            yield self.current()
        finally:
            self._stack.pop()

    @property
    def depth(self) -> int:
        """Number of active scopes (0 outside any ``using`` block)."""
        return len(self._stack) - 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ScopedValue({self.name!r}, depth={self.depth}, "
            f"current={self._stack[-1]!r})"
        )
