"""Exception types for the simulation substrate."""

from __future__ import annotations

__all__ = ["SimulationError", "Interrupt", "StopSimulation"]


class SimulationError(RuntimeError):
    """Generic misuse of the simulation kernel (e.g. re-triggering events)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    ``cause`` carries the interrupting party's reason and is available to
    the interrupted process via ``exc.cause``.
    """

    def __init__(self, cause: object = None) -> None:
        super().__init__(cause)
        self.cause = cause


class StopSimulation(Exception):
    """Raised internally to end :meth:`Environment.run` at its until-event."""

    def __init__(self, value: object = None) -> None:
        super().__init__(value)
        self.value = value
