"""Deterministic random streams for reproducible simulations.

Every stochastic element of a simulation draws from its own named stream so
that adding a new random consumer never perturbs existing draws — runs are
reproducible per (root seed, stream name).
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["SeedSequenceRegistry"]


class SeedSequenceRegistry:
    """Dispenses independent :class:`random.Random` streams by name.

    >>> reg = SeedSequenceRegistry(42)
    >>> a = reg.stream("arrivals")
    >>> b = reg.stream("backoff")
    >>> a is reg.stream("arrivals")
    True
    """

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = root_seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """The stream for ``name``, created deterministically on first use."""
        if name not in self._streams:
            digest = hashlib.sha256(
                f"{self.root_seed}:{name}".encode()
            ).digest()
            self._streams[name] = random.Random(
                int.from_bytes(digest[:8], "big")
            )
        return self._streams[name]

    def spawn(self, name: str) -> "SeedSequenceRegistry":
        """A child registry whose streams are independent of the parent's."""
        digest = hashlib.sha256(f"{self.root_seed}/{name}".encode()).digest()
        return SeedSequenceRegistry(int.from_bytes(digest[:8], "big"))
