"""Shared-resource primitives built on events.

:class:`Resource` is a counting semaphore with FIFO queueing (requests are
events; ``release`` wakes the next waiter).  :class:`Store` is a FIFO buffer
of Python objects with blocking ``get``.  The network layer uses a Store for
per-station arrival queues feeding the MAC layer; examples use Resources to
model host-side contention (section 2.2's "software layers sitting in
between").
"""

from __future__ import annotations

import typing
from collections import deque

from repro.sim.errors import SimulationError
from repro.sim.events import Event

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Environment

__all__ = ["Resource", "Request", "Store"]


class Request(Event):
    """A pending claim on a :class:`Resource`; succeeds when granted.

    Use as a context manager for exception-safe release::

        with resource.request() as req:
            yield req
            ...
    """

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource
        resource._admit(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.resource.release(self)


class Resource:
    """Counting semaphore with FIFO grant order."""

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._users: set[Request] = set()
        self._waiting: deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of granted (active) requests."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        return len(self._waiting)

    def request(self) -> Request:
        return Request(self)

    def _admit(self, request: Request) -> None:
        if len(self._users) < self.capacity:
            self._users.add(request)
            request.succeed()
        else:
            self._waiting.append(request)

    def release(self, request: Request) -> None:
        """Release a granted request; granting the oldest waiter, if any.

        Releasing an ungranted (still waiting) request cancels it.
        """
        if request in self._users:
            self._users.remove(request)
            while self._waiting and len(self._users) < self.capacity:
                waiter = self._waiting.popleft()
                self._users.add(waiter)
                waiter.succeed()
        else:
            try:
                self._waiting.remove(request)
            except ValueError:
                raise SimulationError("release of unknown request") from None


class Store:
    """Unbounded (or bounded) FIFO buffer with blocking get.

    ``put`` succeeds immediately unless the store is full; ``get`` succeeds
    immediately when an item is available, otherwise when one arrives.
    """

    def __init__(
        self, env: "Environment", capacity: int | None = None
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._items: deque[object] = deque()
        self._getters: deque[Event] = deque()
        self._putters: deque[tuple[Event, object]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> tuple[object, ...]:
        """Snapshot of buffered items, oldest first."""
        return tuple(self._items)

    def put(self, item: object) -> Event:
        event = Event(self.env)
        if self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            event.succeed()
            self._drain()
        else:
            self._putters.append((event, item))
        return event

    def get(self) -> Event:
        event = Event(self.env)
        if self._items:
            event.succeed(self._items.popleft())
            self._refill()
        else:
            self._getters.append(event)
        return event

    def _drain(self) -> None:
        while self._getters and self._items:
            self._getters.popleft().succeed(self._items.popleft())

    def _refill(self) -> None:
        while self._putters and (
            self.capacity is None or len(self._items) < self.capacity
        ):
            event, item = self._putters.popleft()
            self._items.append(item)
            event.succeed()
        self._drain()
