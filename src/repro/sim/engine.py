"""The simulation environment: clock + event queue + run loop.

:class:`Environment` owns simulated time (``now``), a priority queue of
triggered events, and factory helpers (``timeout``, ``process``, ``event``,
``all_of``, ``any_of``).  Time is whatever numeric type the caller uses —
the broadcast-network layer uses integer bit-times throughout so analytic
and simulated quantities compare exactly.
"""

from __future__ import annotations

import heapq
import itertools
import typing
from collections.abc import Iterable

from repro.sim.errors import SimulationError, StopSimulation
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process, ProcessGenerator

__all__ = ["Environment"]

#: Queue priorities: interrupts preempt ordinary events at the same time.
_URGENT = 0
_NORMAL = 1


class Environment:
    """A discrete-event simulation environment.

    >>> env = Environment()
    >>> def hello(env):
    ...     yield env.timeout(3)
    ...     return env.now
    >>> proc = env.process(hello(env))
    >>> env.run()
    >>> proc.value
    3
    """

    def __init__(self, initial_time: int | float = 0) -> None:
        self._now = initial_time
        self._queue: list[tuple[int | float, int, int, Event]] = []
        self._eid = itertools.count()
        self._active_process: Process | None = None

    @property
    def now(self) -> int | float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self) -> Process | None:
        """The process currently executing, if any."""
        return self._active_process

    @property
    def pending(self) -> bool:
        """True when any event is scheduled on the queue.

        Slot-synchronous fast loops (:meth:`BroadcastChannel.run_fast
        <repro.net.channel.BroadcastChannel.run_fast>`) poll this to detect
        foreign processes: as long as it is False, the loop owns the clock
        and may advance it directly via :meth:`advance_to`.
        """
        return bool(self._queue)

    def advance_to(self, time: int | float) -> None:
        """Advance the clock directly, without processing any event.

        This is the slot-synchronous fast path's clock: a loop that is the
        sole time-advancing activity may skip the event queue entirely and
        move ``now`` forward itself.  Refuses to move backwards or to jump
        over a scheduled event (which would corrupt the event heap's
        causality).
        """
        if time < self._now:
            raise SimulationError(
                f"advance_to({time}) would move time backwards (now="
                f"{self._now})"
            )
        if self._queue and self._queue[0][0] < time:
            raise SimulationError(
                f"advance_to({time}) would skip over an event scheduled "
                f"at {self._queue[0][0]}"
            )
        self._now = time

    # -- factories ---------------------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: int | float, value: object = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator) -> Process:
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling --------------------------------------------------------

    def _schedule(
        self, event: Event, delay: int | float = 0, priority: int = _NORMAL
    ) -> None:
        heapq.heappush(
            self._queue, (self._now + delay, priority, next(self._eid), event)
        )

    def peek(self) -> int | float:
        """Time of the next scheduled event, or +inf when the queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event (advancing the clock to it)."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        when, _, _, event = heapq.heappop(self._queue)
        self._now = when
        callbacks = event.callbacks
        event.callbacks = None
        assert callbacks is not None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            raise typing.cast(BaseException, event._value)

    def run(self, until: Event | int | float | None = None) -> object:
        """Run until the given event triggers, the given time, or exhaustion.

        Returns the until-event's value when an event is given.  Running
        until a time leaves ``now`` at exactly that time.
        """
        stop_value: object = None
        until_event: Event | None = None
        if until is not None:
            if isinstance(until, Event):
                until_event = until
                if until_event.callbacks is None:
                    return until_event._value
                until_event._add_callback(self._stop_callback)
            else:
                if until < self._now:
                    raise ValueError(
                        f"until={until} is in the past (now={self._now})"
                    )
                marker = Event(self)
                marker._ok = True
                marker._value = None
                marker.callbacks = [self._stop_callback]
                self._schedule(marker, delay=until - self._now)
        try:
            while self._queue:
                self.step()
        except StopSimulation as stop:
            stop_value = stop.value
            if until_event is not None:
                return until_event._value
            # Time-based stop: clamp now to the requested time.
            return stop_value
        if until_event is not None and not until_event.triggered:
            raise SimulationError("run() ended before its until-event fired")
        return stop_value

    @staticmethod
    def _stop_callback(event: Event) -> None:
        raise StopSimulation(event._value)
