"""Events: the synchronisation primitive of the simulation kernel.

An :class:`Event` moves through three states — pending, triggered (scheduled
on the event queue with a value or an exception), processed (callbacks run).
Processes wait on events by ``yield``-ing them; composite conditions
(:class:`AllOf`, :class:`AnyOf`) build barriers and races out of simpler
events.  The design follows the classic SimPy kernel, reimplemented from
scratch for this project (no third-party dependency).
"""

from __future__ import annotations

import typing
from collections.abc import Callable, Iterable

from repro.sim.errors import SimulationError

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Environment

__all__ = ["Event", "Timeout", "Condition", "AllOf", "AnyOf"]

_PENDING = object()


class Event:
    """A one-shot occurrence at a point in simulated time.

    Callbacks receive the event itself; ``event.value`` is the payload (or
    the exception, if the event failed).
    """

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: list[Callable[[Event], None]] | None = []
        self._value: object = _PENDING
        self._ok: bool | None = None
        self._defused = False

    def __repr__(self) -> str:
        state = (
            "pending"
            if not self.triggered
            else ("ok" if self._ok else "failed")
        )
        return f"<{type(self).__name__} {state} at t={self.env.now}>"

    @property
    def triggered(self) -> bool:
        """True once the event has a value (it may not be processed yet)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True iff the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> object:
        if self._value is _PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    def succeed(self, value: object = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception to throw into waiters."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Copy another event's outcome into this one (callback helper)."""
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(typing.cast(BaseException, event._value))

    def _add_callback(self, callback: Callable[["Event"], None]) -> None:
        if self.callbacks is None:
            raise SimulationError(f"{self!r} already processed")
        self.callbacks.append(callback)

    def defuse(self) -> None:
        """Mark a failed event as handled so the kernel won't escalate it."""
        self._defused = True


class Timeout(Event):
    """An event that fires ``delay`` time units after creation.

    >>> # inside a process:  yield env.timeout(5)
    """

    def __init__(
        self, env: "Environment", delay: int | float, value: object = None
    ) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._schedule(self, delay=delay)


class Condition(Event):
    """Composite event over a set of sub-events.

    Triggers when ``evaluate(events, triggered_count)`` returns True, or
    fails as soon as any sub-event fails.  Its value is a dict mapping each
    *triggered* sub-event to its value.
    """

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[list[Event], int], bool],
        events: Iterable[Event],
    ) -> None:
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0
        for event in self._events:
            if event.env is not env:
                raise SimulationError("condition mixes environments")
        if self._evaluate(self._events, self._count):
            self.succeed(self._collect())
            return
        for event in self._events:
            if event.callbacks is None:  # already processed
                self._check(event)
            else:
                event._add_callback(self._check)

    def _collect(self) -> dict[Event, object]:
        # Processed, not merely triggered: Timeout events carry their value
        # from creation (they are scheduled pre-triggered), so "triggered"
        # would wrongly include timeouts that have not fired yet.
        return {
            event: event._value
            for event in self._events
            if event.processed and event._ok
        }

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event.defuse()
            self.fail(typing.cast(BaseException, event._value))
            return
        self._count += 1
        if self._evaluate(self._events, self._count):
            self.succeed(self._collect())


class AllOf(Condition):
    """Barrier: triggers when every sub-event has triggered."""

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, lambda evs, count: count >= len(evs), events)


class AnyOf(Condition):
    """Race: triggers as soon as one sub-event has triggered."""

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, lambda evs, count: count >= 1 or not evs, events)
