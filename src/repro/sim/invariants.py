"""Online invariant monitors: the paper's proved properties as oracles.

The correctness results of the paper — mutual exclusion on the broadcast
bus, deadline compliance under the feasibility condition FC (theorems
P5/P6), and the bounded collision-resolution cost ``xi(k, t)`` of Eq. 1 —
are turned here into *online monitors* hooked into the channel round loop.
Each monitor watches every slot (under either engine: the round driver is
engine-independent, so violation reports are byte-identical across ``des``
and ``fastloop``) and records structured :class:`Violation` entries
instead of silently passing; the aggregated :class:`InvariantReport` is
attached to :class:`~repro.net.network.RunResult`.

Monitor-to-theorem mapping:

* :class:`MutualExclusionMonitor` — safety: a slot is observed SUCCESS iff
  exactly one uncorrupted frame was on the wire; corrupted slots must
  read COLLISION and deliver nothing.
* :class:`DeadlineMonitor` — timeliness (P5/P6): no message completes
  after its absolute deadline ``DM = T + d``, and no past-due message is
  still queued at the horizon.  Only meaningful when the caller knows the
  workload satisfies FC (:func:`repro.core.feasibility.check_feasibility`)
  and the fault plan stays within the ``a/w`` bound — an overload plan is
  *expected* to trip it (that is the oracle's negative test).
* :class:`WorkConservationMonitor` — the channel never idles for more
  than a threshold of consecutive slots while some live station has a
  queued message (DDCR's compressed time pulls any waiting class to the
  frontier at theta(c) per empty run, so legitimate idle streaks are
  bounded by ``d/c``-scale slot counts).
* :class:`SearchLengthMonitor` — Eq. 1: no run of consecutive genuine
  collisions exceeds a full time-tree + static-tree descent
  (:meth:`DDCRConfig.collision_run_bound`), and on corruption-free runs
  every completed TTs/STs record stays within its ``xi``-based slot
  budget from :mod:`repro.core.search_cost`.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.protocols.base import ChannelState

if typing.TYPE_CHECKING:  # pragma: no cover - layering guard
    from repro.net.frames import Frame
    from repro.net.station import Station
    from repro.protocols.ddcr.config import DDCRConfig

__all__ = [
    "BridgeConservationMonitor",
    "DeadlineMonitor",
    "InvariantMonitor",
    "InvariantReport",
    "MonitorSuite",
    "MutualExclusionMonitor",
    "SearchLengthMonitor",
    "Violation",
    "WorkConservationMonitor",
    "standard_suite",
]

_SILENCE = ChannelState.SILENCE
_SUCCESS = ChannelState.SUCCESS
_COLLISION = ChannelState.COLLISION

#: Per-monitor cap on stored violations; further ones are counted, not kept.
MAX_VIOLATIONS_PER_MONITOR = 100


@dataclasses.dataclass(frozen=True, slots=True)
class Violation:
    """One observed breach of a proved property.

    ``details`` is a sorted tuple of ``(key, value)`` pairs so reports are
    deterministic, hashable and picklable — the engine-differential tests
    compare them byte-for-byte.
    """

    invariant: str
    time: int
    message: str
    details: tuple[tuple[str, object], ...] = ()

    def detail(self, key: str) -> object:
        for name, value in self.details:
            if name == key:
                return value
        raise KeyError(key)


def _details(**kwargs: object) -> tuple[tuple[str, object], ...]:
    return tuple(sorted(kwargs.items()))


@dataclasses.dataclass(frozen=True, slots=True)
class InvariantReport:
    """Aggregated monitor output for one run."""

    violations: tuple[Violation, ...]
    slots_checked: int
    monitors: tuple[str, ...]
    #: Violations beyond the per-monitor cap, by invariant name.
    truncated: tuple[tuple[str, int], ...] = ()

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def total_violations(self) -> int:
        return len(self.violations) + sum(n for _, n in self.truncated)

    def by_invariant(self, name: str) -> tuple[Violation, ...]:
        return tuple(v for v in self.violations if v.invariant == name)

    def summary(self) -> str:
        if self.ok:
            return (
                f"invariants ok ({', '.join(self.monitors)}; "
                f"{self.slots_checked} slots)"
            )
        counts: dict[str, int] = {}
        for violation in self.violations:
            counts[violation.invariant] = counts.get(violation.invariant, 0) + 1
        for name, extra in self.truncated:
            counts[name] = counts.get(name, 0) + extra
        rendered = ", ".join(
            f"{name}: {count}" for name, count in sorted(counts.items())
        )
        return f"INVARIANT VIOLATIONS ({rendered})"


class InvariantMonitor:
    """Base class: per-slot hook plus an end-of-run pass."""

    name = "invariant"

    def __init__(self) -> None:
        self.violations: list[Violation] = []
        self.dropped = 0

    def record(self, time: int, message: str, **details: object) -> None:
        if len(self.violations) >= MAX_VIOLATIONS_PER_MONITOR:
            self.dropped += 1
            return
        self.violations.append(
            Violation(
                invariant=self.name,
                time=time,
                message=message,
                details=_details(**details),
            )
        )

    def on_slot(
        self,
        now: int,
        duration: int,
        state: ChannelState,
        wire: int,
        frame: "Frame | None",
        corrupted: bool,
        jammed: bool,
        stations: list["Station"],
        down: set[int] | None,
    ) -> None:
        """Digest one channel round.  ``wire`` counts frames on the wire
        (real transmitters plus injected babble frames)."""

    def finalize(
        self,
        horizon: int,
        stations: list["Station"],
        down: set[int] | None,
    ) -> None:
        """End-of-run checks (backlog, per-run records)."""


class MutualExclusionMonitor(InvariantMonitor):
    """Safety: at most one successful transmitter per slot, and the
    observed channel state is exactly the resolution of the wire."""

    name = "mutual_exclusion"

    def on_slot(
        self, now, duration, state, wire, frame, corrupted, jammed,
        stations, down,
    ) -> None:
        if corrupted:
            if state is not _COLLISION:
                self.record(
                    now,
                    "corrupted slot not observed as collision",
                    state=state.value,
                )
            if frame is not None:
                self.record(
                    now,
                    "frame delivered on a corrupted slot",
                    station=frame.station_id,
                )
            return
        if state is _SUCCESS:
            if wire != 1:
                self.record(
                    now,
                    f"success observed with {wire} transmitters on the wire",
                    wire=wire,
                )
            if frame is None:
                self.record(now, "success observed without a frame")
        elif state is _SILENCE:
            if wire != 0:
                self.record(
                    now,
                    f"silence observed with {wire} transmitters on the wire",
                    wire=wire,
                )
        else:
            if wire < 2:
                self.record(
                    now,
                    f"collision observed with {wire} transmitters on an "
                    "uncorrupted slot",
                    wire=wire,
                )


class DeadlineMonitor(InvariantMonitor):
    """Timeliness (P5/P6): no completion past its absolute deadline, no
    past-due backlog at the horizon.  Arm only when FC is expected to
    hold and the fault plan stays within the declared ``a/w`` bounds."""

    name = "deadline"

    def on_slot(
        self, now, duration, state, wire, frame, corrupted, jammed,
        stations, down,
    ) -> None:
        if corrupted or state is not _SUCCESS or frame is None:
            return
        if frame.station_id < 0:
            return  # babble frames carry no real deadline
        end = now + duration
        message = frame.message
        if end > message.absolute_deadline:
            self.record(
                now,
                f"message completed {end - message.absolute_deadline} "
                "bit-times past its deadline",
                station=frame.station_id,
                msg_class=message.msg_class.name,
                deadline=message.absolute_deadline,
                completion=end,
            )

    def finalize(self, horizon, stations, down) -> None:
        for station in stations:
            for message in station.backlog():
                if message.absolute_deadline < horizon:
                    self.record(
                        horizon,
                        "past-due message still queued at the horizon",
                        station=station.station_id,
                        msg_class=message.msg_class.name,
                        deadline=message.absolute_deadline,
                    )


class WorkConservationMonitor(InvariantMonitor):
    """The channel must not idle indefinitely while work is queued.

    ``limit`` is the longest tolerated run of consecutive silent slots
    with a non-empty queue on some *live* (not crashed) station.  DDCR's
    compressed time advances ``reft`` by theta(c) per empty run, so any
    queued message's deadline class reaches the covered horizon within
    ``~d/c`` slots; the default limit in :func:`standard_suite` is sized
    from the configuration with generous slack."""

    name = "work_conservation"

    def __init__(self, limit: int) -> None:
        super().__init__()
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        self.limit = limit
        self._streak = 0
        self._streak_started = 0
        self._reported = False

    def on_slot(
        self, now, duration, state, wire, frame, corrupted, jammed,
        stations, down,
    ) -> None:
        if state is _SILENCE and not corrupted:
            backlogged = False
            if down:
                for station in stations:
                    if station.station_id not in down and station.queue:
                        backlogged = True
                        break
            else:
                for station in stations:
                    if station.queue:
                        backlogged = True
                        break
            if backlogged:
                if self._streak == 0:
                    self._streak_started = now
                self._streak += 1
                if self._streak > self.limit and not self._reported:
                    self._reported = True
                    self.record(
                        now,
                        f"channel idle for {self._streak} consecutive slots "
                        "with queued messages",
                        since=self._streak_started,
                        limit=self.limit,
                    )
                return
        self._streak = 0
        self._reported = False


class SearchLengthMonitor(InvariantMonitor):
    """Eq. 1: collision resolution terminates within the ``xi`` budget.

    Online: a run of consecutive *genuine* (uncorrupted) collision slots
    longer than a full time-tree + static-tree descent means the search
    is not converging.  At finalize, on corruption- and desync-free runs,
    every completed TTs/STs record is checked against its analytic slot
    budget (``xi``/:func:`~repro.core.search_cost.heavy_search_bound`,
    plus ``margin`` slack for arrivals that move ``msg*`` mid-search)."""

    name = "search_length"

    def __init__(self, config: "DDCRConfig", margin: int = 8) -> None:
        super().__init__()
        self.config = config
        self.margin = margin
        self._collision_bound = config.collision_run_bound(margin)
        self._streak = 0
        self._streak_started = 0
        self._reported = False
        self._tainted = False  # corruption or desync seen: skip record checks

    def on_slot(
        self, now, duration, state, wire, frame, corrupted, jammed,
        stations, down,
    ) -> None:
        if corrupted or down or (frame is not None and frame.station_id < 0):
            self._tainted = True
        if state is _COLLISION:
            if corrupted:
                return  # excused: does not reset or extend the genuine run
            if self._streak == 0:
                self._streak_started = now
            self._streak += 1
            if self._streak > self._collision_bound and not self._reported:
                self._reported = True
                self.record(
                    now,
                    f"{self._streak} consecutive genuine collisions exceed "
                    f"the descent bound {self._collision_bound}",
                    since=self._streak_started,
                    bound=self._collision_bound,
                )
            return
        self._streak = 0
        self._reported = False

    def finalize(self, horizon, stations, down) -> None:
        if self._tainted:
            return
        from repro.core.search_cost import exact_cost_table, heavy_search_bound

        config = self.config
        sts_budget = (
            1
            + max(exact_cost_table(config.static_m, config.static_q).costs)
            + self.margin
        )
        for station in stations:
            mac = station.mac
            for rec in getattr(mac, "sts_records", ()):
                if rec.wasted_slots > sts_budget:
                    self.record(
                        rec.ended_at,
                        f"STs run wasted {rec.wasted_slots} slots, "
                        f"budget {sts_budget}",
                        station=station.station_id,
                        started=rec.started_at,
                        wasted=rec.wasted_slots,
                        budget=sts_budget,
                    )
            for rec in getattr(mac, "tts_records", ()):
                budget = (
                    heavy_search_bound(
                        rec.successes,
                        rec.nested_sts_runs,
                        config.time_f,
                        config.time_m,
                    )
                    + self.margin
                )
                if rec.wasted_slots > budget:
                    self.record(
                        rec.ended_at,
                        f"TTs run wasted {rec.wasted_slots} slots, "
                        f"budget {budget}",
                        station=station.station_id,
                        started=rec.started_at,
                        wasted=rec.wasted_slots,
                        budget=budget,
                    )
            # Records are identical replicas across stations in lockstep;
            # checking every station is O(z * runs) but catches replica
            # divergence for free.  (Stations that crashed taint the run.)


class BridgeConservationMonitor(InvariantMonitor):
    """Store-and-forward correctness of one fabric bridge.

    The fabric (:mod:`repro.net.fabric`) stages segment runs: a bridge's
    enqueue schedule — which relayed frame becomes ready on the target
    segment at which time — is fully known before the target segment
    runs, so this monitor checks the bridge's three properties *online*
    against that schedule, on the target segment's channel:

    * **no loss** — every enqueued frame is forwarded, still queued, or
      still pending at the horizon (drops across a bridge are loss and
      are reported);
    * **per-class FIFO** — relayed frames of one class leave the bridge
      in enqueue order (the EDF queue tie-breaks by (arrival, seq), so
      a healthy bridge can never reorder within a class);
    * **bounded queue** — instantaneous occupancy (entered minus
      forwarded) never exceeds the declared capacity.  Violations are
      reported, not silently dropped: at FC-feasible loads the composed
      route bound keeps occupancy low, and past it an oracle violation
      is the honest outcome.
    """

    name = "bridge_conservation"

    def __init__(
        self,
        bridge: str,
        station_id: int,
        schedule: typing.Mapping[str, typing.Sequence[int]],
        capacity: int,
    ) -> None:
        super().__init__()
        self.bridge = bridge
        self.station_id = station_id
        self.capacity = capacity
        self._expected = {
            name: tuple(times) for name, times in sorted(schedule.items())
        }
        self._cursor = {name: 0 for name in self._expected}
        self._entries = sorted(
            t for times in self._expected.values() for t in times
        )
        self._entered = 0
        self._forwarded = 0
        self._over_reported = False

    def on_slot(
        self, now, duration, state, wire, frame, corrupted, jammed,
        stations, down,
    ) -> None:
        entries = self._entries
        n = self._entered
        while n < len(entries) and entries[n] <= now:
            n += 1
        self._entered = n
        if (
            state is _SUCCESS
            and frame is not None
            and frame.station_id == self.station_id
        ):
            message = frame.message
            name = message.msg_class.name
            expected = self._expected.get(name)
            if expected is not None:
                i = self._cursor[name]
                if i >= len(expected):
                    self.record(
                        now,
                        "bridge forwarded a frame it never enqueued",
                        bridge=self.bridge,
                        msg_class=name,
                        arrival=message.arrival,
                    )
                elif expected[i] != message.arrival:
                    self.record(
                        now,
                        "bridge forwarded out of enqueue (FIFO) order",
                        bridge=self.bridge,
                        msg_class=name,
                        expected=expected[i],
                        forwarded=message.arrival,
                    )
                    # Resync past the frame actually forwarded, if known.
                    try:
                        j = expected.index(message.arrival, i)
                    except ValueError:
                        j = i - 1
                    self._cursor[name] = max(i, j + 1)
                else:
                    self._cursor[name] = i + 1
                self._forwarded += 1
        occupancy = self._entered - self._forwarded
        if occupancy > self.capacity:
            if not self._over_reported:
                self._over_reported = True
                self.record(
                    now,
                    f"bridge queue occupancy {occupancy} exceeds capacity "
                    f"{self.capacity}",
                    bridge=self.bridge,
                    occupancy=occupancy,
                    capacity=self.capacity,
                )
        else:
            self._over_reported = False

    def finalize(self, horizon, stations, down) -> None:
        station = None
        for candidate in stations:
            if candidate.station_id == self.station_id:
                station = candidate
                break
        if station is None:
            self.record(
                horizon,
                "bridge station absent from the target segment",
                bridge=self.bridge,
                station=self.station_id,
            )
            return
        relay_names = set(self._expected)
        expected_total = sum(1 for t in self._entries if t < horizon)
        backlog = sum(
            1 for m in station.backlog() if m.msg_class.name in relay_names
        )
        pending = station.pending_arrivals_of(relay_names)
        dropped = sum(
            1
            for record in station.completions
            if record.dropped and record.message.msg_class.name in relay_names
        )
        if dropped:
            self.record(
                horizon,
                f"bridge dropped {dropped} relayed frames",
                bridge=self.bridge,
                dropped=dropped,
            )
        accounted = self._forwarded + backlog + pending + dropped
        if accounted != expected_total:
            self.record(
                horizon,
                f"bridge frame conservation broken: enqueued "
                f"{expected_total}, accounted {accounted}",
                bridge=self.bridge,
                enqueued=expected_total,
                forwarded=self._forwarded,
                backlog=backlog,
                pending=pending,
                dropped=dropped,
            )


class MonitorSuite:
    """The set of monitors armed on one channel.

    The round driver calls :meth:`on_slot` exactly once per round — on
    both the corrupted early-return path and the normal resolution path —
    under either engine, so a suite's report is an engine-independent
    function of the run."""

    __slots__ = ("monitors", "slots_checked")

    def __init__(self, monitors: typing.Sequence[InvariantMonitor]) -> None:
        if not monitors:
            raise ValueError("monitor suite needs at least one monitor")
        self.monitors = tuple(monitors)
        self.slots_checked = 0

    def on_slot(
        self,
        now: int,
        duration: int,
        state: ChannelState,
        wire: int,
        frame: "Frame | None",
        corrupted: bool,
        jammed: bool,
        stations: list["Station"],
        down: set[int] | None,
    ) -> None:
        self.slots_checked += 1
        for monitor in self.monitors:
            monitor.on_slot(
                now, duration, state, wire, frame, corrupted, jammed,
                stations, down,
            )

    def finalize(
        self,
        horizon: int,
        stations: list["Station"],
        down: set[int] | None = None,
    ) -> InvariantReport:
        violations: list[Violation] = []
        truncated: list[tuple[str, int]] = []
        for monitor in self.monitors:
            monitor.finalize(horizon, stations, down)
            violations.extend(monitor.violations)
            if monitor.dropped:
                truncated.append((monitor.name, monitor.dropped))
        violations.sort(key=lambda v: (v.time, v.invariant, v.message))
        return InvariantReport(
            violations=tuple(violations),
            slots_checked=self.slots_checked,
            monitors=tuple(m.name for m in self.monitors),
            truncated=tuple(truncated),
        )


def standard_suite(
    stations: list["Station"],
    *,
    deadline: bool = True,
    work_conservation_limit: int | None = None,
    search_margin: int = 8,
) -> MonitorSuite:
    """The default monitor set for a homogeneous network.

    Always arms :class:`MutualExclusionMonitor`.  :class:`DeadlineMonitor`
    is on unless ``deadline=False`` (disarm it for protocols that drop —
    BEB — or workloads that violate FC on purpose).  The search-length
    monitor arms only when every station runs CSMA/DDCR with one shared
    config; work conservation arms unless a backoff protocol (which idles
    legitimately for unbounded stretches) is present.
    """
    from repro.protocols.csma_cd import CSMACDProtocol
    from repro.protocols.ddcr.protocol import DDCRProtocol
    from repro.protocols.slotted_aloha import SlottedAlohaProtocol

    monitors: list[InvariantMonitor] = [MutualExclusionMonitor()]
    macs = [station.mac for station in stations]
    if deadline:
        monitors.append(DeadlineMonitor())
    ddcr_configs = [mac.config for mac in macs if isinstance(mac, DDCRProtocol)]
    if len(ddcr_configs) == len(macs) and ddcr_configs:
        config = ddcr_configs[0]
        if all(other == config for other in ddcr_configs[1:]):
            monitors.append(SearchLengthMonitor(config, margin=search_margin))
            if work_conservation_limit is None:
                # Compressed time reaches any queued class within ~d/c
                # slots; 4F covers d <= 4*c*F with the descent on top.
                work_conservation_limit = (
                    4 * config.time_f + config.collision_run_bound()
                )
    if work_conservation_limit is None:
        work_conservation_limit = 512
    if not any(
        isinstance(mac, (CSMACDProtocol, SlottedAlohaProtocol))
        for mac in macs
    ):
        monitors.append(WorkConservationMonitor(work_conservation_limit))
    return MonitorSuite(monitors)
