"""Time-series statistics collectors.

Small, dependency-free accumulators used by the metrics layer: running
scalar statistics (:class:`RunningStats`), time-weighted averages of a
piecewise-constant signal (:class:`TimeWeighted`), and fixed-bin histograms
(:class:`Histogram`).
"""

from __future__ import annotations

import dataclasses
import math

__all__ = ["RunningStats", "TimeWeighted", "Histogram"]


class RunningStats:
    """Streaming count/mean/variance/min/max (Welford's algorithm)."""

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value: float) -> None:
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    @property
    def mean(self) -> float:
        return self._mean if self.count else math.nan

    @property
    def variance(self) -> float:
        if self.count < 2:
            return 0.0 if self.count else math.nan
        return self._m2 / (self.count - 1)

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance) if self.count else math.nan


class TimeWeighted:
    """Time-weighted average of a piecewise-constant signal.

    Call :meth:`update` whenever the signal changes; :meth:`average` up to a
    closing time integrates the trajectory.
    """

    def __init__(self, start_time: float = 0.0, initial: float = 0.0) -> None:
        self._last_time = start_time
        self._value = initial
        self._area = 0.0
        self._start = start_time

    @property
    def value(self) -> float:
        return self._value

    def update(self, time: float, value: float) -> None:
        if time < self._last_time:
            raise ValueError(
                f"time went backwards: {time} < {self._last_time}"
            )
        self._area += self._value * (time - self._last_time)
        self._last_time = time
        self._value = value

    def average(self, until: float) -> float:
        if until < self._last_time:
            raise ValueError(f"until={until} precedes last update")
        span = until - self._start
        if span == 0:
            return self._value
        return (self._area + self._value * (until - self._last_time)) / span


@dataclasses.dataclass
class Histogram:
    """Fixed-width binned histogram over [0, bin_width * bins), with overflow."""

    bin_width: float
    bins: int

    def __post_init__(self) -> None:
        if self.bin_width <= 0:
            raise ValueError(f"bin_width must be > 0, got {self.bin_width}")
        if self.bins < 1:
            raise ValueError(f"bins must be >= 1, got {self.bins}")
        self.counts = [0] * self.bins
        self.overflow = 0
        self.total = 0

    def add(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"histogram values must be >= 0, got {value}")
        index = int(value // self.bin_width)
        if index >= self.bins:
            self.overflow += 1
        else:
            self.counts[index] += 1
        self.total += 1

    def quantile(self, q: float) -> float:
        """Approximate quantile (upper edge of the bin holding it)."""
        if not 0 <= q <= 1:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if self.total == 0:
            return math.nan
        target = q * self.total
        cumulative = 0
        for index, count in enumerate(self.counts):
            cumulative += count
            if cumulative >= target:
                return (index + 1) * self.bin_width
        return math.inf
