"""Discrete-event simulation substrate (built from scratch for this project).

A compact generator-based kernel in the SimPy tradition: processes yield
:class:`Event` objects, the :class:`Environment` drives the event queue,
:class:`Resource`/:class:`Store` provide synchronisation, plus deterministic
RNG streams, structured tracing and statistics collectors.  The broadcast
network simulator (:mod:`repro.net`) runs entirely on this kernel.
"""

from repro.sim.engine import Environment
from repro.sim.errors import Interrupt, SimulationError, StopSimulation
from repro.sim.events import AllOf, AnyOf, Condition, Event, Timeout
from repro.sim.monitor import Histogram, RunningStats, TimeWeighted
from repro.sim.process import Process, ProcessGenerator
from repro.sim.resources import Request, Resource, Store
from repro.sim.rng import SeedSequenceRegistry
from repro.sim.trace import TraceLog, TraceRecord

__all__ = [
    "Environment",
    "Interrupt",
    "SimulationError",
    "StopSimulation",
    "AllOf",
    "AnyOf",
    "Condition",
    "Event",
    "Timeout",
    "Histogram",
    "RunningStats",
    "TimeWeighted",
    "Process",
    "ProcessGenerator",
    "Request",
    "Resource",
    "Store",
    "SeedSequenceRegistry",
    "TraceLog",
    "TraceRecord",
]
