"""Structured trace log for simulations.

A :class:`TraceLog` records timestamped, typed records.  The network layer
emits one record per channel slot and per protocol phase change, which the
bound-checking analysis (:mod:`repro.analysis.bounds`) consumes to count
search slots and compare them against the analytic ``xi`` values.
"""

from __future__ import annotations

import dataclasses
import json
import os
from collections.abc import Callable, Iterator

__all__ = ["TraceRecord", "TraceLog", "NULL_TRACE"]


@dataclasses.dataclass(frozen=True, slots=True)
class TraceRecord:
    """One trace entry: time, event kind, and free-form details."""

    time: int | float
    kind: str
    details: dict[str, object]

    def __getitem__(self, key: str) -> object:
        return self.details[key]


class TraceLog:
    """Append-only trace with filtered iteration.

    Tracing can be disabled (``enabled=False``) to keep long benchmark runs
    allocation-free; ``emit`` is then a no-op.  Disabled tracing is only
    truly zero-cost when hot call sites check :attr:`enabled` *before*
    building the ``**details`` dict — ``emit`` cannot undo an argument dict
    the caller already allocated — so per-slot emitters (the channel's
    round driver) hoist the check out of their loops.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._records: list[TraceRecord] = []
        self._subscribers: list[Callable[[TraceRecord], None]] = []

    def __len__(self) -> int:
        return len(self._records)

    def emit(self, time: int | float, kind: str, **details: object) -> None:
        if not self.enabled:
            return
        record = TraceRecord(time=time, kind=kind, details=details)
        self._records.append(record)
        for subscriber in self._subscribers:
            subscriber(record)

    def subscribe(self, callback: Callable[[TraceRecord], None]) -> None:
        """Register a live listener invoked on every emitted record."""
        self._subscribers.append(callback)

    def records(self, kind: str | None = None) -> Iterator[TraceRecord]:
        """Iterate records, optionally restricted to one kind."""
        for record in self._records:
            if kind is None or record.kind == kind:
                yield record

    def count(self, kind: str) -> int:
        return sum(1 for _ in self.records(kind))

    def between(
        self, start: int | float, end: int | float, kind: str | None = None
    ) -> list[TraceRecord]:
        """Records with ``start <= time < end`` (and matching kind)."""
        return [
            record
            for record in self.records(kind)
            if start <= record.time < end
        ]

    def clear(self) -> None:
        self._records.clear()

    def to_jsonl(
        self, path: str | os.PathLike[str], kind: str | None = None
    ) -> int:
        """Export records as JSON Lines; returns the number written.

        Each line is ``{"time": ..., "kind": ..., **details}``; detail
        values that are not JSON-native (message instances, enums...)
        are serialised via ``str``, so the export never raises on
        free-form payloads.  ``kind`` restricts the export to one record
        kind, mirroring :meth:`records`.
        """
        count = 0
        with open(path, "w", encoding="utf-8") as handle:
            for record in self.records(kind):
                doc = {"time": record.time, "kind": record.kind}
                doc.update(record.details)
                handle.write(json.dumps(doc, default=str) + "\n")
                count += 1
        return count


class _NullTraceLog(TraceLog):
    """The shared always-disabled trace (see :data:`NULL_TRACE`)."""

    def __init__(self) -> None:
        super().__init__(enabled=False)

    def emit(self, time: int | float, kind: str, **details: object) -> None:
        pass

    def subscribe(self, callback: Callable[[TraceRecord], None]) -> None:
        raise RuntimeError(
            "NULL_TRACE is shared and never emits; subscribe to a real "
            "TraceLog instead"
        )


#: Process-wide disabled trace: components that default to "no tracing"
#: share this singleton instead of allocating a throwaway TraceLog each.
#: It never records, never notifies, and refuses subscribers.
NULL_TRACE = _NullTraceLog()
