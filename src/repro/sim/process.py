"""Processes: generator coroutines driven by the event queue.

A process is a Python generator that ``yield``s events; the kernel resumes
it with the event's value (or throws the event's exception into it).  The
process object is itself an event that triggers when the generator returns,
so processes can wait on each other.
"""

from __future__ import annotations

import typing
from collections.abc import Generator

from repro.sim.errors import Interrupt, SimulationError
from repro.sim.events import Event

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Environment

__all__ = ["Process", "ProcessGenerator"]

#: The type a process function must return.
ProcessGenerator = Generator[Event, object, object]


class Process(Event):
    """A running process; also an event that fires on completion."""

    def __init__(self, env: "Environment", generator: ProcessGenerator) -> None:
        if not hasattr(generator, "throw"):
            raise TypeError(f"process needs a generator, got {generator!r}")
        super().__init__(env)
        self._generator = generator
        self._target: Event | None = None
        # Bootstrap: resume the generator at the current time.
        bootstrap = Event(env)
        bootstrap._ok = True
        bootstrap._value = None
        bootstrap.callbacks = [self._resume]
        env._schedule(bootstrap)

    def __repr__(self) -> str:
        name = getattr(self._generator, "__name__", "process")
        return f"<Process {name} at t={self.env.now}>"

    @property
    def target(self) -> Event | None:
        """The event this process is currently waiting for (if any)."""
        return self._target

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a process
        that is waiting on an event detaches it from that event.
        """
        if self.triggered:
            raise SimulationError(f"{self!r} already finished")
        if self._target is self:
            raise SimulationError("a process cannot interrupt itself")
        carrier = Event(self.env)
        carrier._ok = False
        carrier._value = Interrupt(cause)
        carrier._defused = True
        carrier.callbacks = [self._resume]
        self.env._schedule(carrier, priority=0)

    def _resume(self, event: Event) -> None:
        self.env._active_process = self
        # Detach from the previous target if we were interrupted away.
        if self._target is not None and self._target.callbacks is not None:
            if self._resume in self._target.callbacks:
                self._target.callbacks.remove(self._resume)
        self._target = None
        try:
            if event._ok:
                next_event = self._generator.send(event._value)
            else:
                event.defuse()
                next_event = self._generator.throw(
                    typing.cast(BaseException, event._value)
                )
        except StopIteration as stop:
            self.env._active_process = None
            self.succeed(stop.value)
            return
        except BaseException as error:
            self.env._active_process = None
            self.fail(error)
            return
        self.env._active_process = None
        if not isinstance(next_event, Event):
            self._generator.throw(
                SimulationError(f"process yielded a non-event: {next_event!r}")
            )
            return
        if next_event.env is not self.env:
            raise SimulationError("process yielded an event from another env")
        self._target = next_event
        if next_event.callbacks is None:
            # Already processed: resume immediately at the current time.
            carrier = Event(self.env)
            carrier._ok = next_event._ok
            carrier._value = next_event._value
            if not next_event._ok:
                next_event.defuse()
                carrier._defused = True
            carrier.callbacks = [self._resume]
            self.env._schedule(carrier)
        else:
            next_event._add_callback(self._resume)
